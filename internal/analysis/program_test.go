package analysis

import (
	"strings"
	"testing"
)

// findFunc locates a FuncNode by its rendered name, failing the test when it
// is absent so callers can chain assertions without nil checks.
func findFunc(t *testing.T, prog *Program, name string) *FuncNode {
	t.Helper()
	for _, n := range prog.Funcs {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("function %s not found in program (have %d funcs)", name, len(prog.Funcs))
	return nil
}

// TestCrossPackageCallGraph builds a Program over the wallclock fixture tree
// (three packages) and asserts calls resolve across package boundaries: the
// synergy helper must link to util.Stamp's in-module body, which chains to
// stampImpl and finally to the external time.Now leaf.
func TestCrossPackageCallGraph(t *testing.T) {
	pkgs := loadFixtures(t, "wallclock/internal/synergy", "wallclock/internal/util", "wallclock/internal/obs")
	prog := NewProgram(pkgs)

	helper := findFunc(t, prog, "fixture/wallclock/internal/util.Stamp")
	if helper.External() {
		t.Fatalf("util.Stamp resolved as external; cross-package body not linked")
	}

	caller := findFunc(t, prog, "fixture/wallclock/internal/synergy.measureViaHelper")
	var viaEdge bool
	for _, e := range prog.Callees(caller) {
		if e.Callee == helper {
			viaEdge = true
		}
	}
	if !viaEdge {
		t.Fatalf("measureViaHelper has no edge to util.Stamp; callees: %v", prog.Callees(caller))
	}

	impl := findFunc(t, prog, "fixture/wallclock/internal/util.stampImpl")
	var hitsClock bool
	for _, e := range prog.Callees(impl) {
		if e.Callee.External() && e.Callee.Name == "time.Now" {
			hitsClock = true
		}
	}
	if !hitsClock {
		t.Fatalf("stampImpl does not reach the external time.Now leaf; callees: %v", prog.Callees(impl))
	}

	// Backward reachability must carry the taint from time.Now all the way
	// up to the cross-package caller, while the obs quarantine stays out.
	reached := prog.Reaches(
		func(n *FuncNode) bool { return n.External() && n.Name == "time.Now" },
		func(n *FuncNode) bool { return n.Pkg != nil && strings.HasSuffix(n.Pkg.ImportPath, "/internal/obs") },
	)
	if !reached[caller] {
		t.Errorf("measureViaHelper should transitively reach time.Now")
	}
	for n := range reached {
		if n.Pkg != nil && strings.HasSuffix(n.Pkg.ImportPath, "/internal/obs") {
			t.Errorf("quarantined obs function %s leaked into the reach set", n.Name)
		}
	}
}

// TestLoaderCacheReuse asserts that loading a package already type-checked as
// a dependency of an earlier LoadDir reuses the cached check verbatim — the
// same types objects — rather than re-checking. Object identity across
// packages is what lets the call graph link cross-package edges at all.
func TestLoaderCacheReuse(t *testing.T) {
	l, err := NewLoader("testdata", "fixture")
	if err != nil {
		t.Fatal(err)
	}
	// Loading synergy pulls in util (and obs) through the import graph.
	if _, err := l.LoadDir("wallclock/internal/synergy"); err != nil {
		t.Fatal(err)
	}
	cached, ok := l.cache["fixture/wallclock/internal/util"]
	if !ok {
		t.Fatalf("loading synergy did not populate the cache with its util dependency; cache keys: %d", len(l.cache))
	}
	if _, err := l.LoadDir("wallclock/internal/util"); err != nil {
		t.Fatal(err)
	}
	if after := l.cache["fixture/wallclock/internal/util"]; after != cached {
		t.Errorf("LoadDir(util) replaced the cached check instead of reusing it")
	}
	if cached.pkg.Name() != "util" {
		t.Errorf("cached package name = %q, want util", cached.pkg.Name())
	}
}

// fixtureUniverse lists every fixture directory of every registered case,
// deduplicated, in registration order.
func fixtureUniverse() []string {
	seen := map[string]bool{}
	var dirs []string
	for _, tc := range fixtureCases {
		for _, d := range tc.dirs {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// runAll loads the given fixture dirs in the given order and renders the
// findings of the full default runner.
func runAll(t *testing.T, dirs []string) string {
	t.Helper()
	pkgs := loadFixtures(t, dirs...)
	return renderDiags(NewRunner().Run(pkgs))
}

// TestRunDeterministicAcrossOrderings pins the determinism contract of the
// linter itself: the rendered findings over the whole fixture universe must
// be byte-identical across repeated runs and across package-load orderings.
func TestRunDeterministicAcrossOrderings(t *testing.T) {
	dirs := fixtureUniverse()
	base := runAll(t, dirs)
	if base == "" {
		t.Fatal("fixture universe produced no findings; determinism test is vacuous")
	}
	if again := runAll(t, dirs); again != base {
		t.Errorf("second run differs from first over identical inputs")
	}
	rev := make([]string, len(dirs))
	for i, d := range dirs {
		rev[len(dirs)-1-i] = d
	}
	if got := runAll(t, rev); got != base {
		t.Errorf("reversed load order changed the findings\n--- forward ---\n%s--- reversed ---\n%s", base, got)
	}
}

// TestWriteCallsDeterministic asserts the -calls dump is byte-identical
// across runs and load orderings, so it can be diffed in CI.
func TestWriteCallsDeterministic(t *testing.T) {
	dirs := []string{"wallclock/internal/synergy", "wallclock/internal/util", "wallclock/internal/obs"}
	dump := func(order []string) string {
		var b strings.Builder
		if err := NewProgram(loadFixtures(t, order...)).WriteCalls(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	base := dump(dirs)
	if base == "" {
		t.Fatal("empty call-graph dump")
	}
	if got := dump([]string{dirs[2], dirs[1], dirs[0]}); got != base {
		t.Errorf("call-graph dump depends on package load order\n--- forward ---\n%s--- reversed ---\n%s", base, got)
	}
}
