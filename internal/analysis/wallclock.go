package analysis

import (
	"go/ast"
	"strings"
)

// WallClock polices the wall-clock quarantine: every deterministic output of
// this repository (results files, metrics, traces) must be a pure function
// of configuration and seeds, so reading the host clock is only legal inside
// internal/obs — the profiling tier that is explicitly documented as
// non-deterministic and never feeds a result byte. The pass flags direct
// calls to time.Now/Since/Until anywhere else, and — through the call graph
// — calls to in-module helpers that transitively reach one, so wrapping the
// clock in a utility function does not launder it.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "flag time.Now/Since/Until use outside the internal/obs quarantine, including transitively through helpers",
	Run:  runWallClock,
}

// wallClockSources are the clock-reading stdlib entry points.
var wallClockSources = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// obsQuarantined reports whether n is defined in the internal/obs package —
// the one place wall-clock reads are sanctioned. Quarantined functions
// neither trigger findings nor propagate taint to their callers, so using
// the obs profiling API from anywhere stays legal.
func obsQuarantined(n *FuncNode) bool {
	if n.Pkg == nil {
		return false
	}
	return n.Pkg.Dir == "internal/obs" || strings.HasSuffix(n.Pkg.ImportPath, "/internal/obs")
}

func runWallClock(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	isSource := func(n *FuncNode) bool { return wallClockSources[n.FullName()] }
	quarantine := func(n *FuncNode) bool {
		// Test files may time themselves; the contract covers shipped code.
		return obsQuarantined(n) || (n.Body != nil && pass.IsTestFile(n.Body.Pos()))
	}
	reached := prog.Reaches(isSource, quarantine)

	for _, n := range prog.Funcs {
		if n.Pkg == nil || n.Pkg.ImportPath != pass.ImportPath {
			continue
		}
		if quarantine(n) {
			continue
		}
		for _, e := range prog.Callees(n) {
			if e.Kind == EdgeContains {
				continue // the literal's own sites are reported directly
			}
			switch {
			case isSource(e.Callee):
				pass.Reportf(e.Site.Pos(), "wall-clock read (%s) outside the internal/obs quarantine; deterministic paths must use simulated time", e.Callee.FullName())
			case reached[e.Callee] && !e.Callee.External():
				pass.Reportf(e.Site.Pos(), "call to %s transitively reaches a wall-clock read outside the internal/obs quarantine", e.Callee.Name)
			}
		}
		// time.Now passed around as a value escapes the call-edge scan.
		walkShallow(n.Body, func(m ast.Node) {
			sel, ok := m.(*ast.SelectorExpr)
			if !ok {
				return
			}
			if obj := useOrDef(pass, sel.Sel); obj != nil {
				if fn, ok := obj.(interface{ FullName() string }); ok && wallClockSources[fn.FullName()] {
					if !isCallFun(n, sel) {
						pass.Reportf(sel.Pos(), "wall-clock function %s captured as a value outside the internal/obs quarantine", fn.FullName())
					}
				}
			}
		})
	}
}

// isCallFun reports whether sel is the Fun of some call edge site of n
// (already reported above), as opposed to a bare function value.
func isCallFun(n *FuncNode, sel *ast.SelectorExpr) bool {
	found := false
	walkShallow(n.Body, func(m ast.Node) {
		if call, ok := m.(*ast.CallExpr); ok && unparen(call.Fun) == ast.Expr(sel) {
			found = true
		}
	})
	return found
}
