// Clean counterparts: same-unit arithmetic, ratios, cross-dimension
// products and named conversions are all allowed.
package fixture

func secondsToMs(s float64) float64 { return s * 1e3 }

func mhzToHz(f int) int { return f * 1e6 }

func cleanUsage(a, b measurement) (float64, bool) {
	elapsed := a.TimeS + b.TimeS // same unit
	speedup := a.TimeS / b.TimeS // ratio erases the unit
	energy := a.PowerW * a.TimeS // cross-dimension product (W*s = J)
	var tMs float64
	tMs = secondsToMs(a.TimeS)         // named conversion
	freqHz := mhzToHz(a.FreqMHz)       // named conversion
	scaled := float64(a.FreqMHz) * 1e6 // multiplication erases the unit
	ok := a.FreqHz > freqHz && elapsed > 0 && scaled > 0
	return speedup + energy + tMs, ok
}
