// Seeded unitcheck violations: arithmetic, comparison, assignment and
// composite-literal mixes across unit families.
package fixture

type measurement struct {
	TimeS   float64
	TimeMs  float64
	EnergyJ float64
	PowerW  float64
	FreqMHz int
	FreqHz  int
}

func mixedArithmetic(m measurement) float64 {
	total := m.TimeS + m.TimeMs   // seconds + milliseconds
	drift := m.EnergyJ - m.PowerW // energy - power
	return total + drift
}

func mixedComparison(m measurement) bool {
	return m.FreqMHz > m.FreqHz // MHz vs Hz
}

func mixedAssign(m measurement) (float64, int) {
	var tMs float64
	tMs = m.TimeS // seconds value into a milliseconds variable
	freqHz := 0
	freqHz = m.FreqMHz // MHz value into a Hz variable
	return tMs, freqHz
}

func mixedLiteral(m measurement) measurement {
	return measurement{
		FreqMHz: m.FreqHz, // Hz value into a MHz field
		TimeS:   m.TimeMs, // milliseconds value into a seconds field
	}
}
