// Seeded sortslice violations inside a policed hot package: both
// reflection-based sorters on an undocumented (non-ignored) call site.
package ml

import "sort"

func rankHot(xs []float64) {
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
}

func rankHotStable(xs []float64) {
	sort.SliceStable(xs, func(a, b int) bool { return xs[a] < xs[b] })
}
