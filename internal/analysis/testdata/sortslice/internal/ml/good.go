// Clean counterparts: reflection-free sorting stays quiet, and a cold call
// site documents itself with an ignore directive.
package ml

import (
	"slices"
	"sort"
)

func rankFast(xs []float64) {
	slices.Sort(xs)
}

func rankFunc(xs []float64) {
	slices.SortFunc(xs, func(a, b float64) int {
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
}

func rankCold(xs []float64) {
	// Cold path: runs once per search, not per node.
	//dsalint:ignore sortslice
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
}

func rankStrings(xs []string) {
	sort.Strings(xs) // other sort helpers are not reflection-based per element
}
