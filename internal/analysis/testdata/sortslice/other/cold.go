// Packages outside internal/ml, internal/gpusim and internal/synergy are
// not policed: the same reflection-based sort stays quiet here.
package other

import "sort"

func rankAnywhere(xs []float64) {
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
}
