// internal/xrand is the one package allowed to touch math/rand (it wraps a
// seeded source); the pass must stay quiet here.
package xrand

import "math/rand"

func Wrapped(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
