// Seeded randsource violation: math/rand outside internal/xrand.
package fixture

import "math/rand"

func noise() float64 {
	return rand.Float64() // nondeterministic global source
}
