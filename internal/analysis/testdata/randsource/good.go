// Clean counterpart: deterministic arithmetic needs no random source.
package fixture

func deterministicNoise(seed uint64) float64 {
	seed ^= seed << 13
	return float64(seed%1000) / 1000
}
