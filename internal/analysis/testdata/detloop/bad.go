// Seeded detloop violations: results emitted from inside range-over-map —
// directly, through an io.Writer, and laundered through a render helper —
// land in the output in randomized map order.
package fixture

import (
	"fmt"
	"io"
)

func printPlan(w io.Writer, plan map[string]int) {
	for k, mhz := range plan {
		fmt.Fprintf(w, "%s -> %d MHz\n", k, mhz) // map-ordered print
	}
}

func writeRaw(w io.Writer, rows map[string][]byte) {
	for _, row := range rows {
		w.Write(row) // map-ordered io.Writer write
	}
}

func renderAll(w io.Writer, series map[string][]float64) {
	for name, ys := range series {
		renderSeries(w, name, ys) // helper reaches fmt.Fprintf transitively
	}
}

func renderSeries(w io.Writer, name string, ys []float64) {
	fmt.Fprintf(w, "== %s ==\n", name)
	for _, y := range ys {
		fmt.Fprintf(w, "%.4f\n", y)
	}
}
