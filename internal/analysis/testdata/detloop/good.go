// Clean counterparts: the standing idiom — collect keys, sort, range the
// sorted slice — and map ranges that only aggregate without emitting.
package fixture

import (
	"fmt"
	"io"
	"sort"
)

func printPlanSorted(w io.Writer, plan map[string]int) {
	keys := make([]string, 0, len(plan))
	for k := range plan {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s -> %d MHz\n", k, plan[k]) // slice order: canonical
	}
}

func countEntries(w io.Writer, plan map[string]int) {
	n := 0
	for range plan {
		n++ // aggregation without emission is order-invariant
	}
	fmt.Fprintf(w, "%d entries\n", n)
}
