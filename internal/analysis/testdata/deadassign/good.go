// Clean counterparts: discarding an error is an explicit choice, and
// multi-value blanks select which results matter.
package fixture

import "errors"

func mayFail() error { return errors.New("nope") }

func pair() (float64, error) { return 1.5, nil }

func allowed() float64 {
	_ = mayFail() // error discard is idiomatic

	v, _ := pair() // multi-value blank is not a discard statement
	return v
}
