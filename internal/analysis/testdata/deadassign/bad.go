// Seeded deadassign violations: computed non-error values dropped with
// a blank assignment.
package fixture

func totalEnergy() float64 { return 42.5 }

func dropped() {
	_ = totalEnergy() // computed quantity discarded

	samples := []float64{1, 2, 3}
	_ = samples // refactor leftover
}
