// Benchmarks sink results to defeat dead-code elimination; test files are
// exempt.
package fixture

func sinkInBenchmark() {
	_ = totalEnergy() // not flagged: _test.go
}
