// Mimics the bounded worker pool for the schedule-order accumulation case.
package parallel

func ForEach(n, workers int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func ForEachChunked(n, workers, grain int, fn func(lo, hi int) error) error {
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		if err := fn(lo, hi); err != nil {
			return err
		}
	}
	return nil
}
