// Clean counterparts: sorted-key folds, slice-order folds, loop-local
// accumulators, and the per-task-slot reduction shape.
package fixture

import (
	"sort"

	"fixture/floatacc/internal/parallel"
)

func sumEnergiesSorted(byKernel map[string]float64) float64 {
	keys := make([]string, 0, len(byKernel))
	for k := range byKernel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += byKernel[k] // slice order: canonical
	}
	return total
}

func sumSlice(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x // slice iteration order is fixed
	}
	return total
}

func loopLocalAccumulator(groups map[string][]float64) int {
	n := 0
	for _, ys := range groups {
		sub := 0.0 // resets every iteration: cannot leak map order
		for _, y := range ys {
			sub += y
		}
		if sub > 1 {
			n++
		}
	}
	return n
}

func perSlotReduction(xs []float64) (float64, error) {
	slots := make([]float64, len(xs))
	err := parallel.ForEach(len(xs), 4, func(i int) error {
		slots[i] += xs[i] * xs[i] // per-task slot, folded after the join
		return nil
	})
	total := 0.0
	for _, s := range slots {
		total += s // fold in slice order after the pool finished
	}
	return total, err
}

func perChunkReduction(xs []float64) (float64, error) {
	slots := make([]float64, len(xs))
	err := parallel.ForEachChunked(len(xs), 4, 8, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			slots[i] += xs[i] * xs[i] // chunk-disjoint slots, folded after the join
		}
		return nil
	})
	total := 0.0
	for _, s := range slots {
		total += s // fold in slice order after the pool finished
	}
	return total, err
}
