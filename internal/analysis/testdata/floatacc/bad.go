// Seeded floatacc violations: float reductions folded in map-iteration
// order and in goroutine-schedule order. Float addition is not associative,
// so either ordering changes the low bits between runs.
package fixture

import (
	"sync"

	"fixture/floatacc/internal/parallel"
)

func sumEnergies(byKernel map[string]float64) float64 {
	total := 0.0
	for _, e := range byKernel {
		total += e // folded in map iteration order
	}
	return total
}

func meanByExplicitAdd(byKernel map[string]float64) float64 {
	mean := 0.0
	for _, e := range byKernel {
		mean = mean + e/float64(len(byKernel)) // x = x + e form
	}
	return mean
}

func sumInGoroutines(xs []float64) float64 {
	var wg sync.WaitGroup
	sum := 0.0
	for _, x := range xs {
		wg.Add(1)
		go func() {
			sum += x // schedule-ordered (and racy) reduction
			wg.Done()
		}()
	}
	wg.Wait()
	return sum
}

func sumInPool(xs []float64) (float64, error) {
	sum := 0.0
	err := parallel.ForEach(len(xs), 4, func(i int) error {
		sum += xs[i] // pool tasks fold in completion order
		return nil
	})
	return sum, err
}

func sumInChunkedPool(xs []float64) (float64, error) {
	sum := 0.0
	err := parallel.ForEachChunked(len(xs), 4, 8, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			sum += xs[i] // chunks fold in completion order
		}
		return nil
	})
	return sum, err
}
