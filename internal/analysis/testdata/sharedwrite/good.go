// Clean counterparts: per-task slots keyed by the task index (directly or
// through derived coordinates), and task-local state.
package fixture

import "fixture/sharedwrite/internal/parallel"

func perTaskSlot(xs []float64) ([]float64, error) {
	out := make([]float64, len(xs))
	err := parallel.ForEach(len(xs), 4, func(i int) error {
		out[i] = xs[i] * 2 // index-disjoint: each task owns slot i
		return nil
	})
	return out, err
}

func derivedCoordinates(grid [][]float64, cols int) error {
	return parallel.ForEach(len(grid)*cols, 4, func(ti int) error {
		row, col := ti/cols, ti%cols
		grid[row][col] = float64(ti) // coordinates derived from the task index
		return nil
	})
}

func taskLocalState(xs []float64) ([]float64, error) {
	return parallel.Map(len(xs), 4, func(i int) (float64, error) {
		acc := 0.0 // local accumulator: private to the task
		for _, v := range xs[:i] {
			acc += v
		}
		return acc, nil
	})
}

func chunkedSlots(xs []float64) ([]float64, error) {
	out := make([]float64, len(xs))
	err := parallel.ForEachChunked(len(xs), 4, 8, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = xs[i] * 2 // chunk-disjoint: each chunk owns [lo, hi)
		}
		return nil
	})
	return out, err
}
