// Seeded sharedwrite violations: pool task closures mutating captured state
// — a shared slice slot, an append, a scalar counter, a map store, and a
// write through a captured pointer.
package fixture

import "fixture/sharedwrite/internal/parallel"

func sharedSliceSlot(xs []float64) error {
	return parallel.ForEach(len(xs), 4, func(i int) error {
		xs[0] = xs[i] // every task writes slot 0
		return nil
	})
}

func sharedAppend(xs []float64) ([]float64, error) {
	var out []float64
	err := parallel.ForEach(len(xs), 4, func(i int) error {
		out = append(out, xs[i]*2) // schedule-ordered append to captured slice
		return nil
	})
	return out, err
}

func sharedCounter(xs []float64) (int, error) {
	done := 0
	err := parallel.ForEach(len(xs), 4, func(i int) error {
		done++ // captured counter; racy and schedule-ordered
		return nil
	})
	return done, err
}

func sharedMap(names []string) (map[string]int, error) {
	seen := map[string]int{}
	err := parallel.ForEach(len(names), 4, func(i int) error {
		seen[names[i]] = i // concurrent map store
		return nil
	})
	return seen, err
}

func sharedPointer(total *float64, xs []float64) error {
	return parallel.ForEach(len(xs), 4, func(i int) error {
		*total = *total + xs[i] // write through captured pointer
		return nil
	})
}

func chunkedSharedSlot(xs []float64) error {
	return parallel.ForEachChunked(len(xs), 4, 8, func(lo, hi int) error {
		xs[0] = float64(hi) // every chunk writes slot 0
		return nil
	})
}
