// Mimics the bounded worker pool: fn runs once per index with the task
// index as its final parameter, which is the engine's partitioning key.
package parallel

func ForEach(n, workers int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	for i := 0; i < n; i++ {
		v, err := fn(i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func ForEachChunked(n, workers, grain int, fn func(lo, hi int) error) error {
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		if err := fn(lo, hi); err != nil {
			return err
		}
	}
	return nil
}
