// Clean counterparts: simulated time owned by the caller, and wall time
// routed through the quarantined obs profiling tier.
package synergy

import "fixture/wallclock/internal/obs"

func measureSimulated(simTimeS float64, costS float64) float64 {
	return simTimeS + costS // deterministic: time advances by model cost
}

func measureProfiled(p *obs.PhaseTimer) {
	stop := p.Start() // obs owns the clock; callers stay deterministic
	work()
	stop()
}
