// Seeded wallclock violations: a stray time.Now in the measurement path, a
// duration computed with time.Since, and a cross-package helper chain that
// reaches the clock transitively.
package synergy

import (
	"time"

	"fixture/wallclock/internal/util"
)

func measureDirect() float64 {
	start := time.Now() // direct wall-clock read
	work()
	return time.Since(start).Seconds() // and the matching read on exit
}

func measureViaHelper() int64 {
	return util.Stamp().UnixNano() // reaches time.Now through two calls
}

func work() {}
