// The quarantine: wall-clock reads inside internal/obs are sanctioned (the
// profiling tier is documented as non-deterministic) and must neither be
// flagged nor propagate taint to callers.
package obs

import "time"

type PhaseTimer struct{ nanos int64 }

func (p *PhaseTimer) Start() func() {
	t0 := time.Now()
	return func() { p.nanos += int64(time.Since(t0)) }
}
