// A helper package that launders the clock through two layers of calls: the
// call graph must carry the taint across package boundaries.
package util

import "time"

func Stamp() time.Time { return stampImpl() }

func stampImpl() time.Time { return time.Now() }
