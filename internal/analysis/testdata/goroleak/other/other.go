// Packages outside internal/synergy, internal/cronos and internal/ml are
// not policed: the same fire-and-forget shape stays quiet here.
package other

func fireAndForget(jobs []int) {
	for _, j := range jobs {
		go use(j)
	}
}

func use(int) {}
