// Clean counterparts: WaitGroup join and channel join.
package synergy

import "sync"

func waitGroupJoin(jobs []int) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			process(j)
		}(j)
	}
	wg.Wait()
}

func channelJoin(jobs []int) int {
	done := make(chan int, len(jobs))
	for _, j := range jobs {
		go func(j int) {
			process(j)
			done <- j
		}(j)
	}
	sum := 0
	for range jobs {
		sum += <-done
	}
	return sum
}
