// Seeded goroleak violation inside a policed package path: workers launched
// with no join in the enclosing function.
package synergy

func fireAndForget(jobs []int) {
	for _, j := range jobs {
		go process(j) // never joined
	}
}

func process(int) {}
