// Exercises //dsalint:ignore: one suppressed finding (standalone directive
// above the line), one suppressed trailing, one surviving.
package fixture

func value() float64 { return 7 }

func mixed() {
	//dsalint:ignore deadassign
	_ = value()

	_ = value() //dsalint:ignore deadassign

	_ = value() // survives: this is the only expected finding
}
