// Seeded forkabsorb violations: an unabsorbed fan-out, an absorb buried in
// one branch of a conditional, and fan-outs performed inside parallel tasks
// on schedule-shared receivers.
package fixture

import (
	"fixture/forkabsorb/internal/obs"
	"fixture/forkabsorb/internal/parallel"
	"fixture/forkabsorb/internal/xrand"
)

func neverAbsorbed(o *obs.Observer, n int) {
	forks := o.ForkN(n) // fan-out with no matching AbsorbAll
	for i := range forks {
		forks[i].Note("task")
	}
}

func absorbedConditionally(o *obs.Observer, n int, lucky bool) {
	forks := o.ForkN(n) // absorb happens on one branch only
	for i := range forks {
		forks[i].Note("task")
	}
	if lucky {
		o.AbsorbAll(forks)
	}
}

func splitInsideTask(r *xrand.Rand, vals []float64) error {
	return parallel.ForEach(len(vals), 4, func(i int) error {
		rr := r.Split() // stream derivation order follows the schedule
		vals[i] = float64(rr.Uint64())
		return nil
	})
}

func forkInsideGoroutine(o *obs.Observer, done chan struct{}) {
	go func() {
		child := o.Fork() // fork on shared observer inside a goroutine
		child.Note("late")
		close(done)
	}()
	<-done
}

func splitInsideChunkedTask(r *xrand.Rand, vals []float64) error {
	return parallel.ForEachChunked(len(vals), 4, 8, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rr := r.Split() // stream derivation order follows the schedule
			vals[i] = float64(rr.Uint64())
		}
		return nil
	})
}
