// Clean counterparts: sibling absorb (early error returns allowed — absorb
// -nothing-on-error is the contract), deferred absorb, escaping results,
// and the pre-split idiom with task-indexed streams.
package fixture

import (
	"fixture/forkabsorb/internal/obs"
	"fixture/forkabsorb/internal/parallel"
	"fixture/forkabsorb/internal/xrand"
)

func forkAbsorbSibling(o *obs.Observer, n int) error {
	forks := o.ForkN(n)
	err := parallel.ForEach(n, 4, func(i int) error {
		forks[i].Note("task")
		return nil
	})
	if err != nil {
		return err // error path deliberately skips absorption
	}
	o.AbsorbAll(forks)
	return nil
}

func forkAbsorbDeferred(o *obs.Observer, n int) {
	forks := o.ForkN(n)
	defer o.AbsorbAll(forks)
	for i := range forks {
		forks[i].Note("task")
	}
}

func forkEscapes(o *obs.Observer, n int) []*obs.Observer {
	forks := o.ForkN(n) // handed off whole: the caller owns the absorb
	return forks
}

func preSplitStreams(r *xrand.Rand, vals []float64) error {
	rngs := r.SplitN(len(vals)) // split in task order, before the pool
	return parallel.ForEach(len(vals), 4, func(i int) error {
		vals[i] = float64(rngs[i].Uint64())
		return nil
	})
}

func taskLocalDerivation(r *xrand.Rand, vals []float64) error {
	rngs := r.SplitN(len(vals))
	return parallel.ForEach(len(vals), 4, func(i int) error {
		rr := rngs[i].Split() // deriving from the task's own stream is fine
		vals[i] = float64(rr.Uint64())
		return nil
	})
}

func preSplitChunked(r *xrand.Rand, vals []float64) error {
	rngs := r.SplitN(len(vals)) // split in task order, before the pool
	return parallel.ForEachChunked(len(vals), 4, 8, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			rr := rngs[i].Split() // the chunk's own stream: index derived from lo
			vals[i] = float64(rr.Uint64())
		}
		return nil
	})
}
