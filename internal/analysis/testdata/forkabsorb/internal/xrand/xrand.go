// Mimics the splittable RNG. Rand has no absorb counterpart — containers
// absorb at a higher level — so only the pre-split contract applies to it.
package xrand

type Rand struct{ state uint64 }

func New(seed uint64) *Rand { return &Rand{state: seed} }

func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return r.state
}

func (r *Rand) Split() *Rand { return New(r.Uint64()) }

func (r *Rand) SplitN(n int) []*Rand {
	out := make([]*Rand, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}
