// Mimics the real observability handle: forked per task in task order,
// absorbed back after the join. Having both Fork/ForkN and their
// Absorb/AbsorbAll counterparts is what arms the pairing contract.
package obs

type Observer struct{ spans []string }

func New() *Observer { return &Observer{} }

func (o *Observer) Fork() *Observer { return &Observer{} }

func (o *Observer) ForkN(n int) []*Observer {
	out := make([]*Observer, n)
	for i := range out {
		out[i] = o.Fork()
	}
	return out
}

func (o *Observer) Absorb(child *Observer) {
	o.spans = append(o.spans, child.spans...)
}

func (o *Observer) AbsorbAll(children []*Observer) {
	for _, c := range children {
		o.Absorb(c)
	}
}

func (o *Observer) Note(s string) { o.spans = append(o.spans, s) }
