// Seeded maporder violation: a training matrix accumulated in map
// iteration order and handed off unsorted.
package fixture

func collectRows(byInput map[string][]float64) [][]float64 {
	var rows [][]float64
	for _, v := range byInput {
		rows = append(rows, v) // map order leaks into the training set
	}
	return rows
}
