// Clean counterparts: sort the accumulated slice (or the keys) before use,
// or keep the accumulator loop-local.
package fixture

import "sort"

func collectSortedKeys(byInput map[string][]float64) [][]float64 {
	var keys []string
	for k := range byInput {
		keys = append(keys, k)
	}
	sort.Strings(keys) // canonical order restored: not flagged
	rows := make([][]float64, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, byInput[k])
	}
	return rows
}

func collectAndSortRows(totals map[string]float64) []float64 {
	var vals []float64
	for _, v := range totals {
		vals = append(vals, v)
	}
	sort.Float64s(vals) // not flagged
	return vals
}

func loopLocal(byInput map[string][]float64) int {
	n := 0
	for _, v := range byInput {
		var local []float64
		local = append(local, v...) // loop-local accumulator: not flagged
		n += len(local)
	}
	return n
}
