// Test files are exempt: tolerance helpers and deliberate exact-identity
// assertions (identically seeded streams) live here.
package fixture

func streamsIdentical(a, b float64) bool {
	return a == b // not flagged: _test.go
}
