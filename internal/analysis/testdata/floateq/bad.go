// Seeded floateq violations: exact equality between computed floats.
package fixture

func energiesEqual(a, b float64) bool {
	return a == b // measured quantities are never exactly equal
}

func notConverged(prev, cur float64) bool {
	return prev != cur
}
