// Clean counterparts: sentinel checks against constants and explicit
// tolerances are fine.
package fixture

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sentinels(x float64) bool {
	return x == 0 || x != 1 // constant operand: deliberate identity check
}

func withinTolerance(a, b float64) bool {
	return abs(a-b) <= 1e-9
}

func intEquality(a, b int) bool {
	return a == b // integers compare exactly
}
