package analysis

import (
	"go/ast"
	"strings"
)

// DetLoop is the interprocedural upgrade of maporder: where maporder flags
// slice accumulation in map iteration order, DetLoop follows the output
// itself. Anything *emitted* from inside a `range` over a map — a direct
// fmt.Fprint*/fmt.Print* call, an io.Writer write, or a call to an
// in-module function that transitively reaches such a sink — lands in the
// stream in map iteration order, which Go randomizes per run. Every results
// file in this repository is byte-compared across runs and -j values, so a
// single map-ordered print is a reproduction break. The fix is always the
// same standing idiom: collect the keys, sort them, range over the sorted
// slice.
var DetLoop = &Analyzer{
	Name: "detloop",
	Doc:  "flag output emitted (directly or through function calls) inside range-over-map, where emission order is random",
	Run:  runDetLoop,
}

// sinkLeaves are the stdlib emission points. Interface writes resolve to
// (io.Writer).Write through the call graph's CHA expansion, so writing to
// any w io.Writer matches without enumerating concrete types.
var sinkLeaves = map[string]bool{
	"fmt.Fprint":        true,
	"fmt.Fprintf":       true,
	"fmt.Fprintln":      true,
	"fmt.Print":         true,
	"fmt.Printf":        true,
	"fmt.Println":       true,
	"io.WriteString":    true,
	"(io.Writer).Write": true,
}

// isSinkLeaf matches the leaves plus Write* methods on io's extended
// writer interfaces (StringWriter, ByteWriter, ...).
func isSinkLeaf(n *FuncNode) bool {
	name := n.FullName()
	if sinkLeaves[name] {
		return true
	}
	return strings.HasPrefix(name, "(io.") && strings.Contains(name, ").Write")
}

func runDetLoop(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		return
	}
	reached := prog.Reaches(isSinkLeaf, nil)

	inspect(pass, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMapType(t) {
			return true
		}
		if pass.IsTestFile(rng.Pos()) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, target := range prog.CalleesAt(call) {
				switch {
				case isSinkLeaf(target):
					pass.Reportf(call.Pos(), "output written inside range over map; emission order is random — iterate sorted keys")
					return true
				case reached[target] && !target.External():
					pass.Reportf(call.Pos(), "call to %s emits output inside range over map; emission order is random — iterate sorted keys", target.Name)
					return true
				}
			}
			return true
		})
		return true
	})
}
