package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// UnitCheck flags arithmetic and assignments mixing identifier families that
// carry different physical units. The repository's convention (inherited
// from the paper's measurement stack) encodes units in identifier suffixes —
// FreqMHz, TimeS, EnergyJ, PowerW, durMs — and silent MHz/Hz or J/mJ mixups
// corrupt every model downstream while remaining type-correct Go. The pass
// performs a lightweight dimensional analysis: addition, subtraction and
// comparison require identical unit and scale; multiplication and division
// are exempt (cross-dimension products like W·s are physically meaningful
// and scalar rescaling is how named conversions work).
var UnitCheck = &Analyzer{
	Name: "unitcheck",
	Doc:  "flag arithmetic mixing identifiers with different unit suffixes (MHz/Hz, J/mJ, W, s/ms)",
	Run:  runUnitCheck,
}

// unit is a recognized physical unit: a dimension and a scale relative to
// the dimension's SI base.
type unit struct {
	dim   string
	scale float64
}

func (u unit) String() string { return u.dim + unitScaleName(u.scale) }

func unitScaleName(s float64) string {
	switch s {
	case 1:
		return ""
	case 1e9:
		return "(giga)"
	case 1e6:
		return "(mega)"
	case 1e3:
		return "(kilo)"
	case 1e-3:
		return "(milli)"
	case 1e-6:
		return "(micro)"
	case 1e-9:
		return "(nano)"
	}
	return ""
}

// camelUnitSuffixes maps camel-case identifier suffixes to units, longest
// match first. A suffix only counts when preceded by a lower-case letter,
// digit or underscore (the end of the previous camel word), so RMS does not
// read as seconds.
var camelUnitSuffixes = []struct {
	suffix string
	unit   unit
}{
	{"Seconds", unit{"time", 1}},
	{"Joules", unit{"energy", 1}},
	{"Watts", unit{"power", 1}},
	{"Secs", unit{"time", 1}},
	{"Sec", unit{"time", 1}},
	{"GHz", unit{"frequency", 1e9}},
	{"MHz", unit{"frequency", 1e6}},
	{"KHz", unit{"frequency", 1e3}},
	{"Hz", unit{"frequency", 1}},
	{"MJ", unit{"energy", 1e6}},
	{"mJ", unit{"energy", 1e-3}},
	{"uJ", unit{"energy", 1e-6}},
	{"kJ", unit{"energy", 1e3}},
	{"KJ", unit{"energy", 1e3}},
	{"MW", unit{"power", 1e6}},
	{"mW", unit{"power", 1e-3}},
	{"kW", unit{"power", 1e3}},
	{"KW", unit{"power", 1e3}},
	{"Ms", unit{"time", 1e-3}},
	{"Us", unit{"time", 1e-6}},
	{"Ns", unit{"time", 1e-9}},
	{"J", unit{"energy", 1}},
	{"W", unit{"power", 1}},
	{"S", unit{"time", 1}},
}

// wholeWordUnits match a complete lower-case identifier (parameters and
// locals like mhz, ms, joules). Single letters are excluded: j, s and w are
// ordinary loop and scratch variables.
var wholeWordUnits = map[string]unit{
	"ghz": {"frequency", 1e9}, "mhz": {"frequency", 1e6}, "khz": {"frequency", 1e3}, "hz": {"frequency", 1},
	"joules": {"energy", 1}, "mj": {"energy", 1e-3}, "uj": {"energy", 1e-6},
	"watts": {"power", 1}, "mw": {"power", 1e-3}, "kw": {"power", 1e3},
	"seconds": {"time", 1}, "secs": {"time", 1}, "sec": {"time", 1},
	"ms": {"time", 1e-3}, "us": {"time", 1e-6}, "ns": {"time", 1e-9},
}

// unitOfName derives the unit an identifier carries, if any.
func unitOfName(name string) (unit, bool) {
	if u, ok := wholeWordUnits[name]; ok {
		return u, true
	}
	for _, s := range camelUnitSuffixes {
		if !strings.HasSuffix(name, s.suffix) {
			continue
		}
		i := len(name) - len(s.suffix)
		if i == 0 {
			continue // the bare suffix as a full name is handled above
		}
		prev := rune(name[i-1])
		first := rune(s.suffix[0])
		if first >= 'a' && first <= 'z' {
			// A lowercase-leading suffix (mJ, kW) is indistinguishable from
			// the interior of a camel word ("leakW" is leak+W, not lea+kW);
			// require an explicit snake/digit boundary.
			if prev == '_' || (prev >= '0' && prev <= '9') {
				return s.unit, true
			}
			continue
		}
		if prev == '_' || (prev >= 'a' && prev <= 'z') || (prev >= '0' && prev <= '9') {
			return s.unit, true
		}
	}
	return unit{}, false
}

// unitOf derives the unit an expression carries, if any. Multiplication and
// division erase the unit (rescaling and cross-dimension products are legal);
// addition and subtraction preserve it.
func unitOf(e ast.Expr) (unit, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return unitOfName(x.Name)
	case *ast.SelectorExpr:
		return unitOfName(x.Sel.Name)
	case *ast.CallExpr:
		// A call carries the unit its name declares: BaselineFreqMHz(),
		// toSeconds(x). This is also what makes a named conversion the
		// sanctioned way to cross units.
		switch fn := x.Fun.(type) {
		case *ast.Ident:
			return unitOfName(fn.Name)
		case *ast.SelectorExpr:
			return unitOfName(fn.Sel.Name)
		}
		return unit{}, false
	case *ast.ParenExpr:
		return unitOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			return unitOf(x.X)
		}
		return unit{}, false
	case *ast.BinaryExpr:
		if x.Op == token.ADD || x.Op == token.SUB {
			lu, lok := unitOf(x.X)
			ru, rok := unitOf(x.Y)
			switch {
			case lok && rok && lu == ru:
				return lu, true
			case lok && !rok:
				return lu, true
			case rok && !lok:
				return ru, true
			}
		}
		return unit{}, false
	}
	return unit{}, false
}

var unitMixOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func runUnitCheck(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if !unitMixOps[x.Op] {
				return true
			}
			lu, lok := unitOf(x.X)
			ru, rok := unitOf(x.Y)
			if lok && rok && lu != ru {
				pass.Reportf(x.OpPos, "unit mismatch: %s %s %s (use a named conversion)", lu, x.Op, ru)
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				reportUnitAssign(pass, lhs, x.Rhs[i], x.TokPos)
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) {
					reportUnitAssign(pass, name, x.Values[i], name.Pos())
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := x.Key.(*ast.Ident); ok {
				reportUnitAssign(pass, key, x.Value, x.Colon)
			}
		}
		return true
	})
}

// reportUnitAssign flags lhs = rhs when both sides carry known, different
// units. A top-level call on the right is a named conversion and carries the
// unit of its own name, so MHzToHz(f) assigned to a *Hz variable is clean.
func reportUnitAssign(pass *Pass, lhs, rhs ast.Expr, pos token.Pos) {
	lu, lok := unitOf(lhs)
	if !lok {
		return
	}
	ru, rok := unitOf(rhs)
	if !rok || lu == ru {
		return
	}
	pass.Reportf(pos, "unit mismatch: assigning %s value to %s variable (use a named conversion)", ru, lu)
}
