package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the small dataflow layer shared by the interprocedural
// determinism passes. Two analyses cover what those passes need:
//
//   - Reaches: a whole-program backward closure over the call graph —
//     "which functions can transitively call something matching pred?" —
//     used by wallclock (reaches time.Now) and detloop (reaches an output
//     sink). A quarantine predicate cuts propagation, which is how the
//     internal/obs profiling hooks stay exempt without a hole in the
//     analysis: obs functions neither seed nor forward taint.
//
//   - localTaint: a forward, flow-insensitive fixpoint over one function
//     body — "which locals are (transitively) derived from these seed
//     objects?" — used by sharedwrite and forkabsorb to decide whether an
//     index expression or a receiver is derived from a pool task's index
//     parameter (index-disjoint writes and per-task streams are the two
//     sanctioned ways to touch shared state from a worker).

// Reaches returns the set of functions from which some call chain reaches a
// node satisfying pred. Nodes satisfying quarantine (nil = none) are removed
// from the graph entirely: they neither count as sources nor propagate
// reachability to their callers.
func (p *Program) Reaches(pred func(*FuncNode) bool, quarantine func(*FuncNode) bool) map[*FuncNode]bool {
	inQuarantine := func(n *FuncNode) bool { return quarantine != nil && quarantine(n) }
	reached := map[*FuncNode]bool{}
	var work []*FuncNode
	mark := func(n *FuncNode) {
		if !reached[n] && !inQuarantine(n) {
			reached[n] = true
			work = append(work, n)
		}
	}
	// Seed: every node (with or without a body) matching pred. Externals
	// only exist once an edge references them, so walking the caller index
	// covers them all.
	for _, n := range p.Funcs {
		if pred(n) {
			mark(n)
		}
	}
	for n := range p.callers {
		if n.External() && pred(n) {
			mark(n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range p.callers[n] {
			mark(e.Caller)
		}
	}
	return reached
}

// CallReaches reports whether any resolved target of call is in reached, or
// is itself a source the caller already computed membership for.
func (p *Program) CallReaches(call *ast.CallExpr, reached map[*FuncNode]bool) *FuncNode {
	for _, t := range p.siteEdges[call] {
		if reached[t] {
			return t
		}
	}
	return nil
}

// taintSet tracks the objects a local forward propagation has marked.
type taintSet map[types.Object]bool

// localTaint computes, within body, the set of objects transitively assigned
// from the seed objects. Propagation follows plain and short-variable
// assignments, including multi-value forms: any LHS object whose RHS
// mentions a tainted object becomes tainted. The fixpoint iterates until no
// assignment adds a new object, so chains like wi, fi := ti/nf, ti%nf taint
// wi and fi from ti in one call.
func localTaint(pass *Pass, body ast.Node, seeds []types.Object) taintSet {
	tainted := taintSet{}
	for _, s := range seeds {
		if s != nil {
			tainted[s] = true
		}
	}
	for {
		grew := false
		ast.Inspect(body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// Multi-value RHS (one call) taints every LHS; otherwise pair up.
			if len(asg.Rhs) == 1 && len(asg.Lhs) > 1 {
				if exprMentions(pass, asg.Rhs[0], tainted) {
					for _, lhs := range asg.Lhs {
						grew = taintLHS(pass, lhs, tainted) || grew
					}
				}
				return true
			}
			for i, rhs := range asg.Rhs {
				if i < len(asg.Lhs) && exprMentions(pass, rhs, tainted) {
					grew = taintLHS(pass, asg.Lhs[i], tainted) || grew
				}
			}
			return true
		})
		if !grew {
			return tainted
		}
	}
}

// taintLHS marks the object behind an assignment target; reports growth.
func taintLHS(pass *Pass, lhs ast.Expr, tainted taintSet) bool {
	obj := identObject(pass, lhs)
	if obj == nil || tainted[obj] {
		return false
	}
	tainted[obj] = true
	return true
}

// exprMentions reports whether e references any tainted object.
func exprMentions(pass *Pass, e ast.Expr, tainted taintSet) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := useOrDef(pass, id); obj != nil && tainted[obj] {
			found = true
		}
		return !found
	})
	return found
}

func useOrDef(pass *Pass, id *ast.Ident) types.Object {
	if pass.Info == nil {
		return nil
	}
	if obj, ok := pass.Info.Uses[id]; ok {
		return obj
	}
	return pass.Info.Defs[id]
}

// capturedObject resolves e to the object of its base identifier and reports
// whether that object is declared outside the [lo, hi) range — i.e. captured
// by a closure spanning that range rather than local to it. The second
// result is the object itself (nil when unresolvable).
func capturedObject(pass *Pass, e ast.Expr, lo, hi token.Pos) (bool, types.Object) {
	obj := identObject(pass, baseExpr(e))
	if obj == nil || obj.Pos() == token.NoPos {
		return false, nil
	}
	if obj.Pos() >= lo && obj.Pos() < hi {
		return false, obj
	}
	// Package-level and outer-scope objects are captured state; exclude
	// universe objects (nil, append, ...) which have no position anyway.
	if _, isVar := obj.(*types.Var); !isVar {
		return false, obj
	}
	return true, obj
}

// baseExpr strips index, slice, selector, star and paren layers down to the
// base expression: out[i][j] -> out, (*p).f -> p.
func baseExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}
