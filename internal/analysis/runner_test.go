package analysis

import (
	"reflect"
	"sort"
	"testing"
)

// allFixtureDirs yields every fixture package, producing findings from
// several passes at once.
var allFixtureDirs = []string{
	"deadassign", "floateq", "maporder",
	"goroleak/internal/synergy", "goroleak/other",
	"randsource", "randsource/internal/xrand",
	"suppress", "unitcheck",
}

func TestRunnerStableSortedOrder(t *testing.T) {
	pkgs := loadFixtures(t, allFixtureDirs...)
	r := NewRunner()

	first := r.Run(pkgs)
	if len(first) == 0 {
		t.Fatal("full suite found nothing over the fixtures")
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i], first[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Pass < b.Pass
	}) {
		t.Errorf("diagnostics not sorted by file/line/col/pass:\n%s", renderDiags(first))
	}

	// A second run over the same packages must reproduce the identical
	// slice: no map-iteration order may leak into the report.
	second := r.Run(pkgs)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("two runs disagree\n--- first ---\n%s--- second ---\n%s",
			renderDiags(first), renderDiags(second))
	}
}

func TestRunnerSuppression(t *testing.T) {
	pkgs := loadFixtures(t, "suppress")
	r := &Runner{Analyzers: []*Analyzer{DeadAssign}, Disabled: map[string]bool{}}
	diags := r.Run(pkgs)
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 surviving finding, got %d:\n%s", len(diags), renderDiags(diags))
	}
	if diags[0].Line != 13 {
		t.Errorf("surviving finding at line %d, want the unsuppressed discard at line 13", diags[0].Line)
	}
}

func TestRunnerDisable(t *testing.T) {
	pkgs := loadFixtures(t, "suppress")
	r := NewRunner()
	if err := r.Disable("deadassign"); err != nil {
		t.Fatal(err)
	}
	for _, d := range r.Run(pkgs) {
		if d.Pass == "deadassign" {
			t.Errorf("disabled pass still reported: %s", d)
		}
	}
	if err := r.Disable("nosuchpass"); err == nil {
		t.Error("disabling an unknown pass must fail loudly")
	}
}
