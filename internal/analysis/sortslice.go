package analysis

import (
	"go/ast"
	"strings"
)

// SortSlice flags sort.Slice and sort.SliceStable calls in the
// performance-critical packages (internal/ml, internal/gpusim,
// internal/synergy). Both route every comparison and swap through
// reflection, which dominated the CART trainer's profile before the
// pre-sorted rewrite; hot paths should use slices.Sort/slices.SortFunc or a
// presorted index structure instead. Cold call sites (one-off result
// rankings and the like) document themselves with
// //dsalint:ignore sortslice.
var SortSlice = &Analyzer{
	Name: "sortslice",
	Doc:  "flag reflection-based sort.Slice/sort.SliceStable in hot packages (ml, gpusim, synergy)",
	Run:  runSortSlice,
}

// sortSlicePackages are the package directories the pass polices.
var sortSlicePackages = []string{"internal/ml", "internal/gpusim", "internal/synergy", "internal/serve"}

func runSortSlice(pass *Pass) {
	policed := false
	for _, dir := range sortSlicePackages {
		if pass.Dir == dir || strings.HasSuffix(pass.ImportPath, "/"+dir) {
			policed = true
			break
		}
	}
	if !policed {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok || pkg.Name != "sort" {
				return true
			}
			if name := sel.Sel.Name; name == "Slice" || name == "SliceStable" {
				if pass.IsTestFile(call.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(),
					"reflection-based sort.%s in a hot package; use slices.SortFunc or a presorted index (//dsalint:ignore sortslice for cold paths)",
					name)
			}
			return true
		})
	}
}
