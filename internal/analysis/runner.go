package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// Runner applies a pass suite to loaded packages, honours per-pass disables
// and //dsalint:ignore suppressions, and returns findings in stable order.
type Runner struct {
	Analyzers []*Analyzer
	// Disabled names passes to skip (keys are Analyzer.Name).
	Disabled map[string]bool
}

// NewRunner builds a runner over the full built-in suite.
func NewRunner() *Runner {
	return &Runner{Analyzers: All(), Disabled: map[string]bool{}}
}

// Disable skips the named pass. Unknown names are reported so a typoed
// -disable flag does not silently run the pass it meant to switch off.
func (r *Runner) Disable(name string) error {
	for _, a := range r.Analyzers {
		if a.Name == name {
			r.Disabled[name] = true
			return nil
		}
	}
	return fmt.Errorf("analysis: unknown pass %q", name)
}

// Run executes every enabled pass over every package and returns the
// surviving findings sorted by position.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	// The call graph spans every package of the run so interprocedural
	// passes see cross-package chains; building it once keeps the per-pass
	// cost at lookup time.
	prog := NewProgram(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, a := range r.Analyzers {
			if r.Disabled[a.Name] {
				continue
			}
			var found []Diagnostic
			pass := &Pass{
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Dir:        pkg.Dir,
				ImportPath: pkg.ImportPath,
				Info:       pkg.Info,
				Prog:       prog,
				analyzer:   a.Name,
				diags:      &found,
			}
			a.Run(pass)
			for _, d := range found {
				if !ignores.suppressed(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sortDiagnostics(diags)
	return diags
}

// ignoreKey locates one //dsalint:ignore directive: the file and the source
// line it applies to.
type ignoreKey struct {
	file string
	line int
}

// ignoreSet maps suppressed lines to the pass names they suppress ("*" for
// all passes).
type ignoreSet map[ignoreKey]map[string]bool

// suppressed reports whether d is covered by a directive.
func (s ignoreSet) suppressed(d Diagnostic) bool {
	passes, ok := s[ignoreKey{file: d.File, line: d.Line}]
	if !ok {
		return false
	}
	return passes["*"] || passes[d.Pass]
}

// collectIgnores scans every comment of the package for
// `//dsalint:ignore <pass> [<pass>...]` directives. A trailing comment
// suppresses findings on its own line; a standalone comment line suppresses
// the line immediately below it. With no pass names the directive suppresses
// every pass on that line.
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//dsalint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				passes := map[string]bool{}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					passes["*"] = true
				}
				for _, p := range fields {
					passes[p] = true
				}
				// Same-line (trailing comment) and next-line (directive
				// above the flagged statement) both work.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := ignoreKey{file: pos.Filename, line: line}
					if set[key] == nil {
						set[key] = map[string]bool{}
					}
					for p := range passes {
						set[key][p] = true
					}
				}
			}
		}
	}
	return set
}

// inspect walks every file of the pass in source order, calling fn for each
// node; returning false prunes the subtree.
func inspect(pass *Pass, fn func(n ast.Node) bool) {
	for _, f := range pass.Files {
		ast.Inspect(f, fn)
	}
}

// enclosingFuncs pairs each function body (declaration or literal) of a file
// with its node, outermost first, for passes that reason per-function.
func enclosingFuncs(f *ast.File) []funcNode {
	var fns []funcNode
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				fns = append(fns, funcNode{name: fn.Name.Name, body: fn.Body})
			}
		case *ast.FuncLit:
			fns = append(fns, funcNode{name: "func literal", body: fn.Body})
		}
		return true
	})
	return fns
}

type funcNode struct {
	name string
	body *ast.BlockStmt
}
