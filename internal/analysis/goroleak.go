package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak flags `go` statements in the concurrency-heavy packages
// (internal/synergy, internal/cronos, internal/ml) whose enclosing function
// contains no join — no sync.WaitGroup Wait, no channel receive, no range
// over a channel. A worker that outlives its launcher in the solver or
// measurement path races the next sweep's writes, which is precisely the
// class of corruption `go test -race` only catches when the schedule
// cooperates; statically requiring a visible join makes the discipline
// unconditional.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "flag go statements without a WaitGroup/channel join in the enclosing function (synergy, cronos, ml)",
	Run:  runGoroLeak,
}

// goroLeakPackages are the package directories the pass polices.
var goroLeakPackages = []string{"internal/synergy", "internal/cronos", "internal/ml", "internal/cluster", "internal/faults", "internal/parallel", "internal/obs", "internal/sched", "internal/serve"}

func runGoroLeak(pass *Pass) {
	policed := false
	for _, dir := range goroLeakPackages {
		if pass.Dir == dir || strings.HasSuffix(pass.ImportPath, "/"+dir) {
			policed = true
			break
		}
	}
	if !policed {
		return
	}
	for _, f := range pass.Files {
		for _, fn := range enclosingFuncs(f) {
			checkGoroLeakFunc(pass, fn)
		}
	}
}

// checkGoroLeakFunc inspects one function body, ignoring nested function
// literals (their go statements are charged to the literal itself).
func checkGoroLeakFunc(pass *Pass, fn funcNode) {
	var launches []*ast.GoStmt
	joined := false
	walkShallow(fn.body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.GoStmt:
			launches = append(launches, x)
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				joined = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				joined = true // channel receive
			}
		case *ast.RangeStmt:
			if isChanExpr(pass, x.X) {
				joined = true // draining a channel
			}
		}
	})
	if joined {
		return
	}
	for _, g := range launches {
		pass.Reportf(g.Pos(), "goroutine launched in %s with no WaitGroup Wait or channel join in the enclosing function", fn.name)
	}
}

func isChanExpr(pass *Pass, e ast.Expr) bool {
	t := pass.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// walkShallow visits every node of body except the bodies of nested function
// literals.
func walkShallow(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
