package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file is the interprocedural core of the suite: a CHA-style call graph
// built once per Runner.Run over every loaded package, shared by all passes
// through Pass.Prog. The graph is deliberately conservative in the direction
// the determinism passes need — it may over-approximate callees (flagging is
// then suppressed case by case) but must not silently drop reachable code,
// because a missed edge is a missed wall-clock read or output sink.
//
// Resolution strategy per call site, in order:
//
//   - static calls (package-level functions, concrete methods, method
//     values): the *types.Func the identifier resolves to;
//   - interface method calls: class-hierarchy analysis — every method of a
//     named in-module type whose (pointer) method set satisfies the
//     interface;
//   - calls through values of function type: every in-module function or
//     literal whose address is taken somewhere and whose signature matches;
//   - function literals: charged to the function that lexically contains
//     them with a "contains" edge, because closures in this codebase are
//     overwhelmingly invoked by the orchestration code they are handed to
//     (parallel.ForEach, defer, go). A literal that is built but never run
//     is over-approximated as reachable, which is the safe direction.
//
// Out-of-module callees (stdlib, which is all this module imports) become
// body-less leaf nodes so source/sink predicates can match them by full name
// (e.g. "time.Now") without the graph recursing into the standard library.

// FuncNode is one function in the call graph: a declared function or method,
// a function literal, or a body-less external (stdlib) leaf.
type FuncNode struct {
	// Obj is the type-checker object, nil only for function literals.
	Obj *types.Func
	// Decl is the defining *ast.FuncDecl or *ast.FuncLit; nil for externals.
	Decl ast.Node
	// Body is the function body; nil for externals and body-less decls.
	Body *ast.BlockStmt
	// Pkg is the loaded package holding the body; nil for externals.
	Pkg *Package
	// Name is the stable display name: "path/to/pkg.Func",
	// "path/to/pkg.(*T).Method", or "path/to/pkg.Parent$1" for literals.
	Name string
	// Enclosing is the node lexically containing this literal; nil for
	// declared functions and externals.
	Enclosing *FuncNode

	pos token.Pos
}

// External reports whether the node has no body in the loaded module
// (stdlib or unresolved).
func (n *FuncNode) External() bool { return n.Body == nil }

// FullName returns the canonical identifier used by source/sink predicates:
// Obj.FullName() for declared functions ("time.Now",
// "(*dsenergy/internal/obs.Observer).ForkN"), Name for literals.
func (n *FuncNode) FullName() string {
	if n.Obj != nil {
		return n.Obj.FullName()
	}
	return n.Name
}

// EdgeKind distinguishes how an edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call of a known function or concrete method.
	EdgeStatic EdgeKind = iota
	// EdgeDynamic is a CHA-resolved interface or function-value call.
	EdgeDynamic
	// EdgeContains links a function to a literal defined inside it.
	EdgeContains
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeDynamic:
		return "dynamic"
	default:
		return "contains"
	}
}

// CallEdge is one resolved caller→callee relation.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	// Site is the call expression, or the literal itself for EdgeContains.
	Site ast.Node
	Kind EdgeKind
}

// Program is the whole-module view handed to interprocedural passes.
type Program struct {
	Fset       *token.FileSet
	Packages   []*Package
	ModulePath string

	// Funcs lists every node with a body, in source order.
	Funcs []*FuncNode

	byObj     map[*types.Func]*FuncNode
	byLit     map[*ast.FuncLit]*FuncNode
	externals map[*types.Func]*FuncNode
	callees   map[*FuncNode][]CallEdge
	callers   map[*FuncNode][]CallEdge
	siteEdges map[*ast.CallExpr][]*FuncNode

	// addrTaken lists in-module functions/literals whose address escapes,
	// grouped for function-value CHA.
	addrTaken []*FuncNode
}

// NewProgram builds the call graph for the loaded packages. Packages must
// share one FileSet (the Loader guarantees this); construction is fully
// deterministic given the package order.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Fset:      sharedFset(pkgs),
		Packages:  pkgs,
		byObj:     map[*types.Func]*FuncNode{},
		byLit:     map[*ast.FuncLit]*FuncNode{},
		externals: map[*types.Func]*FuncNode{},
		callees:   map[*FuncNode][]CallEdge{},
		callers:   map[*FuncNode][]CallEdge{},
		siteEdges: map[*ast.CallExpr][]*FuncNode{},
	}
	if len(pkgs) > 0 {
		p.ModulePath = pkgs[0].ModulePath
	}
	p.indexFuncs()
	p.collectAddrTaken()
	for _, n := range p.Funcs {
		p.resolveBody(n)
	}
	return p
}

func sharedFset(pkgs []*Package) *token.FileSet {
	if len(pkgs) > 0 {
		return pkgs[0].Fset
	}
	return token.NewFileSet()
}

// indexFuncs registers a node for every declared function and literal of
// every package, in source order.
func (p *Program) indexFuncs() {
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := &FuncNode{
					Obj:  obj,
					Decl: fd,
					Body: fd.Body,
					Pkg:  pkg,
					Name: declName(pkg, fd, obj),
					pos:  fd.Pos(),
				}
				p.Funcs = append(p.Funcs, node)
				if obj != nil {
					p.byObj[obj] = node
				}
				p.indexLiterals(pkg, node, fd.Body)
			}
		}
	}
}

// indexLiterals registers the function literals nested in body, numbered in
// source order relative to their named ancestor.
func (p *Program) indexLiterals(pkg *Package, outer *FuncNode, body *ast.BlockStmt) {
	count := 0
	var walk func(n ast.Node, parent *FuncNode)
	walk = func(n ast.Node, parent *FuncNode) {
		ast.Inspect(n, func(m ast.Node) bool {
			lit, ok := m.(*ast.FuncLit)
			if !ok {
				return true
			}
			count++
			node := &FuncNode{
				Decl:      lit,
				Body:      lit.Body,
				Pkg:       pkg,
				Name:      fmt.Sprintf("%s$%d", outer.Name, count),
				Enclosing: parent,
				pos:       lit.Pos(),
			}
			p.Funcs = append(p.Funcs, node)
			p.byLit[lit] = node
			walk(lit.Body, node)
			return false // children already walked with the right parent
		})
	}
	walk(body, outer)
}

func declName(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	if obj != nil {
		return obj.FullName()
	}
	return pkg.ImportPath + "." + fd.Name.Name
}

// external interns a body-less leaf for an out-of-module function.
func (p *Program) external(obj *types.Func) *FuncNode {
	if n, ok := p.externals[obj]; ok {
		return n
	}
	n := &FuncNode{Obj: obj, Name: obj.FullName()}
	p.externals[obj] = n
	return n
}

// collectAddrTaken records every in-module function referenced outside call
// position and every literal not immediately invoked: the candidate targets
// of calls through function-typed values.
func (p *Program) collectAddrTaken() {
	seen := map[*FuncNode]bool{}
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					// The Fun position is a call, not an address take; walk
					// arguments only for idents (literals handled below).
					for _, arg := range x.Args {
						if id, ok := unparen(arg).(*ast.Ident); ok {
							p.markAddrTaken(pkg, id, seen)
						}
					}
					return true
				case *ast.Ident:
					p.markAddrTaken(pkg, x, seen)
				case *ast.FuncLit:
					if node := p.byLit[x]; node != nil && !seen[node] {
						seen[node] = true
						p.addrTaken = append(p.addrTaken, node)
					}
				}
				return true
			})
		}
	}
	sort.SliceStable(p.addrTaken, func(i, j int) bool { return p.addrTaken[i].pos < p.addrTaken[j].pos })
}

func (p *Program) markAddrTaken(pkg *Package, id *ast.Ident, seen map[*FuncNode]bool) {
	obj, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	node := p.byObj[obj]
	if node == nil || seen[node] {
		return
	}
	seen[node] = true
	p.addrTaken = append(p.addrTaken, node)
}

// resolveBody adds the outgoing edges of one function: its calls and the
// literals it contains. Nested literal bodies are charged to the literal.
func (p *Program) resolveBody(n *FuncNode) {
	walkShallow(n.Body, func(m ast.Node) {
		switch x := m.(type) {
		case *ast.CallExpr:
			for _, callee := range p.resolveCall(n.Pkg, x) {
				p.addEdge(CallEdge{Caller: n, Callee: callee, Site: x, Kind: edgeKindFor(n.Pkg, x, callee)})
				p.siteEdges[x] = append(p.siteEdges[x], callee)
			}
		case *ast.FuncLit:
			// walkShallow prunes literal bodies but still visits the literal
			// node itself.
			if lit := p.byLit[x]; lit != nil {
				p.addEdge(CallEdge{Caller: n, Callee: lit, Site: x, Kind: EdgeContains})
			}
		}
	})
}

func edgeKindFor(pkg *Package, call *ast.CallExpr, callee *FuncNode) EdgeKind {
	if obj := staticCallee(pkg, call); obj != nil && callee.Obj == obj {
		return EdgeStatic
	}
	if _, ok := unparen(call.Fun).(*ast.FuncLit); ok {
		return EdgeStatic
	}
	return EdgeDynamic
}

// resolveCall returns the possible callees of one call expression in
// deterministic order.
func (p *Program) resolveCall(pkg *Package, call *ast.CallExpr) []*FuncNode {
	// Static resolution first: plain functions, concrete methods, package-
	// qualified calls, method values.
	if obj := staticCallee(pkg, call); obj != nil {
		if node := p.byObj[obj]; node != nil {
			return []*FuncNode{node}
		}
		if iface := interfaceMethodOf(obj); iface == nil {
			return []*FuncNode{p.external(obj)}
		}
		// Interface method: CHA over in-module implementations, keeping the
		// external leaf so predicates on the interface method still fire.
		targets := p.implementationsOf(obj)
		return append(targets, p.external(obj))
	}
	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if node := p.byLit[fun]; node != nil {
			return []*FuncNode{node}
		}
	default:
		// Call through a function-typed value: CHA over address-taken
		// functions and literals with an identical signature.
		if sig, ok := typeOf(pkg, call.Fun).(*types.Signature); ok {
			return p.funcValueTargets(sig)
		}
	}
	return nil
}

// staticCallee resolves call.Fun to a *types.Func when the callee is known
// statically (including interface methods, which the caller expands).
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if obj, ok := sel.Obj().(*types.Func); ok {
				return obj
			}
			return nil
		}
		// Package-qualified call (fmt.Fprintf): no Selection entry.
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// interfaceMethodOf returns the receiver interface of obj, or nil when obj
// is a plain function or concrete method.
func interfaceMethodOf(obj *types.Func) *types.Interface {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementationsOf expands an interface method call to every in-module
// concrete method satisfying the interface, sorted by position.
func (p *Program) implementationsOf(m *types.Func) []*FuncNode {
	iface := interfaceMethodOf(m)
	if iface == nil {
		return nil
	}
	var out []*FuncNode
	for _, n := range p.Funcs {
		if n.Obj == nil {
			continue
		}
		sig := n.Obj.Type().(*types.Signature)
		recv := sig.Recv()
		if recv == nil || n.Obj.Name() != m.Name() {
			continue
		}
		rt := recv.Type()
		if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
			out = append(out, n)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// funcValueTargets lists the address-taken nodes whose signature matches.
func (p *Program) funcValueTargets(sig *types.Signature) []*FuncNode {
	var out []*FuncNode
	for _, n := range p.addrTaken {
		var nsig *types.Signature
		switch {
		case n.Obj != nil:
			nsig = n.Obj.Type().(*types.Signature)
		case n.Pkg != nil:
			if lit, ok := n.Decl.(*ast.FuncLit); ok {
				nsig, _ = typeOf(n.Pkg, lit).(*types.Signature)
			}
		}
		if nsig == nil || nsig.Recv() != nil {
			continue
		}
		if types.Identical(types.NewSignatureType(nil, nil, nil, nsig.Params(), nsig.Results(), nsig.Variadic()), sig) {
			out = append(out, n)
		}
	}
	return out
}

func (p *Program) addEdge(e CallEdge) {
	p.callees[e.Caller] = append(p.callees[e.Caller], e)
	p.callers[e.Callee] = append(p.callers[e.Callee], e)
}

// Callees returns the outgoing edges of n in source order.
func (p *Program) Callees(n *FuncNode) []CallEdge { return p.callees[n] }

// Callers returns the incoming edges of n.
func (p *Program) Callers(n *FuncNode) []CallEdge { return p.callers[n] }

// CalleesAt returns the resolved targets of one call expression.
func (p *Program) CalleesAt(call *ast.CallExpr) []*FuncNode { return p.siteEdges[call] }

// FuncOf returns the node of a declared function object, nil if unknown.
func (p *Program) FuncOf(obj *types.Func) *FuncNode { return p.byObj[obj] }

// LitOf returns the node of a function literal, nil if unknown.
func (p *Program) LitOf(lit *ast.FuncLit) *FuncNode { return p.byLit[lit] }

// EnclosingFunc returns the innermost FuncNode whose body contains pos.
func (p *Program) EnclosingFunc(pos token.Pos) *FuncNode {
	var best *FuncNode
	for _, n := range p.Funcs {
		if n.Decl != nil && n.Decl.Pos() <= pos && pos <= n.Decl.End() {
			if best == nil || n.Decl.Pos() >= best.Decl.Pos() {
				best = n
			}
		}
	}
	return best
}

// InModule reports whether the node's defining package belongs to the
// analyzed module (externals and unresolved nodes are not).
func (p *Program) InModule(n *FuncNode) bool {
	if n == nil || n.Pkg != nil {
		return n != nil
	}
	if n.Obj == nil || n.Obj.Pkg() == nil {
		return false
	}
	path := n.Obj.Pkg().Path()
	return path == p.ModulePath || strings.HasPrefix(path, p.ModulePath+"/")
}

// WriteCalls dumps the call graph as deterministic text: one line per edge,
// suitable for the driver's -calls debugging flag. Ordering goes through
// resolved file positions (not raw token.Pos, which depends on FileSet
// registration order), so the dump is byte-identical across load orderings
// and can be diffed in CI.
func (p *Program) WriteCalls(w io.Writer) error {
	posKey := func(pos token.Pos) string {
		pp := p.Fset.Position(pos)
		return fmt.Sprintf("%s:%06d:%04d", pp.Filename, pp.Line, pp.Column)
	}
	nodes := make([]*FuncNode, 0, len(p.Funcs))
	for _, n := range p.Funcs {
		if len(p.callees[n]) > 0 {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		ki, kj := posKey(nodes[i].pos), posKey(nodes[j].pos)
		if ki != kj {
			return ki < kj
		}
		return nodes[i].Name < nodes[j].Name
	})
	for _, n := range nodes {
		if _, err := fmt.Fprintf(w, "%s:\n", n.Name); err != nil {
			return err
		}
		edges := append([]CallEdge(nil), p.callees[n]...)
		sort.Slice(edges, func(i, j int) bool {
			ki, kj := posKey(edges[i].Site.Pos()), posKey(edges[j].Site.Pos())
			if ki != kj {
				return ki < kj
			}
			if edges[i].Kind != edges[j].Kind {
				return edges[i].Kind < edges[j].Kind
			}
			return edges[i].Callee.Name < edges[j].Callee.Name
		})
		for _, e := range edges {
			pos := p.Fset.Position(e.Site.Pos())
			if _, err := fmt.Fprintf(w, "  -> %-9s %s (%s:%d)\n", e.Kind, e.Callee.Name, pos.Filename, pos.Line); err != nil {
				return err
			}
		}
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if pkg == nil || pkg.Info == nil {
		return nil
	}
	return pkg.Info.TypeOf(e)
}
