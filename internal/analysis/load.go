package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and (best-effort) type-checked directory.
type Package struct {
	Fset       *token.FileSet
	Dir        string // relative to the loader root; "." for the root package
	ImportPath string
	ModulePath string      // the loader's module path, shared by every package of a run
	Files      []*ast.File // primary package files plus external _test package files
	Info       *types.Info
}

// Loader discovers, parses and type-checks the packages of one module tree
// without golang.org/x/tools: in-module imports are resolved by recursively
// type-checking the imported directory, stdlib imports through the gc source
// importer. All positions share one FileSet so diagnostics are comparable
// across packages.
type Loader struct {
	Root       string // absolute module root
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*checkedPkg
	loading map[string]bool
	parsed  map[string]*dirFiles
}

// dirFiles memoizes one directory's parse so the AST nodes (and therefore
// the types.Info keys) are shared between import-driven checks and LoadDir.
type dirFiles struct {
	primary  []*ast.File
	external []*ast.File
}

type checkedPkg struct {
	pkg  *types.Package
	info *types.Info
}

// NewLoader builds a loader for the module rooted at root. modulePath may be
// empty, in which case it is read from root/go.mod (defaulting to "main").
func NewLoader(root, modulePath string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if modulePath == "" {
		modulePath = readModulePath(filepath.Join(abs, "go.mod"))
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:       abs,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*checkedPkg{},
		loading:    map[string]bool{},
		parsed:     map[string]*dirFiles{},
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "main"
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "main"
}

// GoDirs walks the tree under root and returns every directory (relative to
// root, "." for root itself) holding at least one .go file. testdata, vendor,
// hidden and underscore-prefixed directories are skipped, matching the go
// tool's conventions.
func (l *Loader) GoDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(l.Root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	dirs = dedupStrings(dirs)
	return dirs, nil
}

// LoadDir parses and type-checks the package in dir (relative to root),
// including its in-package and external test files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	primary, external, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(primary) == 0 && len(external) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	importPath := l.importPathFor(dir)

	cp, err := l.check(importPath, primary)
	if err != nil {
		return nil, err
	}
	info := cp.info

	files := append([]*ast.File(nil), primary...)
	if len(external) > 0 {
		extInfo := newTypesInfo()
		conf := l.config()
		// Best effort: external test packages import the primary package,
		// which is already cached, so this resolves without recursion.
		conf.Check(importPath+"_test", l.fset, external, extInfo) //nolint:errcheck
		info = mergeInfo(info, extInfo)
		files = append(files, external...)
	}

	return &Package{
		Fset:       l.fset,
		Dir:        dir,
		ImportPath: importPath,
		ModulePath: l.ModulePath,
		Files:      files,
		Info:       info,
	}, nil
}

// Import resolves an import path for go/types: in-module paths recurse into
// the loader, anything else goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if cp, ok := l.cache[path]; ok {
		return cp.pkg, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		if rel == "" {
			rel = "."
		}
		primary, _, err := l.parseDir(rel)
		if err != nil {
			return nil, err
		}
		cp, err := l.check(path, primary)
		if err != nil {
			return nil, err
		}
		return cp.pkg, nil
	}
	return l.std.Import(path)
}

// check type-checks one package unit and caches the result under importPath.
func (l *Loader) check(importPath string, files []*ast.File) (*checkedPkg, error) {
	if cp, ok := l.cache[importPath]; ok {
		return cp, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	info := newTypesInfo()
	conf := l.config()
	// Type errors are collected softly: Info still carries everything the
	// checker resolved, and passes treat missing entries as unknown.
	pkg, _ := conf.Check(importPath, l.fset, files, info)
	cp := &checkedPkg{pkg: pkg, info: info}
	l.cache[importPath] = cp
	return cp, nil
}

func (l *Loader) config() types.Config {
	return types.Config{
		Importer:         l,
		Error:            func(error) {}, // soft errors: keep checking
		FakeImportC:      true,
		IgnoreFuncBodies: false,
	}
}

// parseDir parses every .go file of dir (relative to root) with comments,
// splitting the result into primary-package files (in-package tests included)
// and external _test package files. Filenames in the FileSet are relative to
// the loader root so diagnostics print stable module-relative paths.
func (l *Loader) parseDir(dir string) (primary, external []*ast.File, err error) {
	if df, ok := l.parsed[dir]; ok {
		return df.primary, df.external, nil
	}
	defer func() {
		if err == nil {
			l.parsed[dir] = &dirFiles{primary: primary, external: external}
		}
	}()
	absDir := filepath.Join(l.Root, dir)
	entries, err := os.ReadDir(absDir)
	if err != nil {
		return nil, nil, err
	}
	type parsed struct {
		file *ast.File
		name string
	}
	var files []parsed
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(absDir, name))
		if err != nil {
			return nil, nil, err
		}
		rel := name
		if dir != "." {
			rel = filepath.ToSlash(filepath.Join(dir, name))
		}
		f, err := parser.ParseFile(l.fset, rel, src, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: parsing %s: %w", rel, err)
		}
		files = append(files, parsed{file: f, name: name})
	}
	// The primary package name is the one used by non-test files (falling
	// back to the first file for test-only directories).
	pkgName := ""
	for _, p := range files {
		if !strings.HasSuffix(p.name, "_test.go") {
			pkgName = p.file.Name.Name
			break
		}
	}
	if pkgName == "" && len(files) > 0 {
		pkgName = strings.TrimSuffix(files[0].file.Name.Name, "_test")
	}
	for _, p := range files {
		if p.file.Name.Name == pkgName+"_test" {
			external = append(external, p.file)
		} else {
			primary = append(primary, p.file)
		}
	}
	return primary, external, nil
}

func (l *Loader) importPathFor(dir string) string {
	if dir == "." || dir == "" {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(dir)
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// mergeInfo folds the entries of extra into base (the node sets of a package
// unit and its external test unit are disjoint, so this is a plain union).
func mergeInfo(base, extra *types.Info) *types.Info {
	for k, v := range extra.Types {
		base.Types[k] = v
	}
	for k, v := range extra.Defs {
		base.Defs[k] = v
	}
	for k, v := range extra.Uses {
		base.Uses[k] = v
	}
	for k, v := range extra.Selections {
		base.Selections[k] = v
	}
	for k, v := range extra.Implicits {
		base.Implicits[k] = v
	}
	return base
}

func dedupStrings(in []string) []string {
	out := in[:0]
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
