package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SharedWrite polices the one memory rule of the parallel engine: a task
// closure handed to parallel.ForEach/parallel.Map/parallel.ForEachChunked
// may only write shared state through a per-task slot — an element of a
// captured slice indexed by (an expression derived from) the task index or
// chunk-bound parameters. Any other write to
// captured state — a plain assignment, a compound assignment or ++/--, an
// append, a map store, a write through a captured pointer — is either a
// data race outright or a schedule-ordered accumulation that breaks the
// byte-identical-for-every--j contract. Atomic counters are method or
// function calls, not assignments, so the deliberately sanctioned
// obs-counter pattern stays silent by construction.
var SharedWrite = &Analyzer{
	Name: "sharedwrite",
	Doc:  "flag pool task closures that write captured state without index-disjoint partitioning or atomics",
	Run:  runSharedWrite,
}

func runSharedWrite(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		lit, idxParams := poolClosure(pass, call)
		if lit == nil || pass.IsTestFile(lit.Pos()) {
			return true
		}
		checkTaskWrites(pass, lit, idxParams)
		return true
	})
}

func checkTaskWrites(pass *Pass, lit *ast.FuncLit, idxParams []types.Object) {
	var taint taintSet
	if len(idxParams) > 0 {
		taint = localTaint(pass, lit.Body, idxParams)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkWriteTarget(pass, lit, taint, lhs, x.Pos())
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, lit, taint, x.X, x.Pos())
		}
		return true
	})
}

// checkWriteTarget flags a write to target when its base object is captured
// from outside the closure and the write is not index-disjoint.
func checkWriteTarget(pass *Pass, lit *ast.FuncLit, taint taintSet, target ast.Expr, pos token.Pos) {
	captured, obj := capturedObject(pass, target, lit.Pos(), lit.End())
	if !captured {
		return
	}
	switch t := unparen(target).(type) {
	case *ast.Ident:
		pass.Reportf(pos, "parallel task assigns captured %s; shared scalars serialize on the schedule — write to a per-task slot instead", obj.Name())
	case *ast.StarExpr:
		pass.Reportf(pos, "parallel task writes through captured pointer %s; partition the output per task instead", obj.Name())
	case *ast.IndexExpr:
		if bt := pass.TypeOf(baseOfIndexChain(t)); bt != nil {
			if _, isMap := bt.Underlying().(*types.Map); isMap {
				pass.Reportf(pos, "parallel task stores into captured map %s; concurrent map writes race — collect per task and merge in task order", obj.Name())
				return
			}
		}
		if !indexChainMentions(pass, t, taint) {
			pass.Reportf(pos, "parallel task writes captured %s at an index not derived from the task index; overlapping tasks race — partition by task index", obj.Name())
		}
	case *ast.SelectorExpr:
		pass.Reportf(pos, "parallel task writes field of captured %s; shared struct state is schedule-ordered — use a per-task slot", obj.Name())
	}
}

// baseOfIndexChain unwraps nested index expressions to the indexed base:
// out[wi][fi] -> out.
func baseOfIndexChain(e *ast.IndexExpr) ast.Expr {
	var x ast.Expr = e
	for {
		ie, ok := unparen(x).(*ast.IndexExpr)
		if !ok {
			return x
		}
		x = ie.X
	}
}

// indexChainMentions reports whether any index in the chain references a
// task-index-derived object: out[i], out[wi][fi] with wi,fi := ti/nf, ti%nf.
func indexChainMentions(pass *Pass, e *ast.IndexExpr, taint taintSet) bool {
	if taint == nil {
		return false
	}
	var x ast.Expr = e
	for {
		ie, ok := unparen(x).(*ast.IndexExpr)
		if !ok {
			return false
		}
		if exprMentions(pass, ie.Index, taint) {
			return true
		}
		x = ie.X
	}
}
