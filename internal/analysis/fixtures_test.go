package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCases maps each pass to the fixture directories it runs over. Every
// directory holds seeded violations (bad.go) next to clean counterparts
// (good.go and exemption files), so a golden match asserts both the positive
// and the negative behaviour of the pass.
var fixtureCases = []struct {
	analyzer *Analyzer
	dirs     []string
}{
	{UnitCheck, []string{"unitcheck"}},
	{FloatEq, []string{"floateq"}},
	{RandSource, []string{"randsource", "randsource/internal/xrand"}},
	{MapOrder, []string{"maporder"}},
	{GoroLeak, []string{"goroleak/internal/synergy", "goroleak/other"}},
	{DeadAssign, []string{"deadassign"}},
	{SortSlice, []string{"sortslice/internal/ml", "sortslice/other"}},
	{ForkAbsorb, []string{"forkabsorb", "forkabsorb/internal/obs", "forkabsorb/internal/parallel", "forkabsorb/internal/xrand"}},
	{WallClock, []string{"wallclock/internal/synergy", "wallclock/internal/obs", "wallclock/internal/util"}},
	{DetLoop, []string{"detloop"}},
	{SharedWrite, []string{"sharedwrite", "sharedwrite/internal/parallel"}},
	{FloatAcc, []string{"floatacc", "floatacc/internal/parallel"}},
}

// loadFixtures loads the named testdata directories with a shared loader.
func loadFixtures(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	l, err := NewLoader("testdata", "fixture")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := l.LoadDir(d)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", d, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestPassFixtures runs each pass in isolation over its fixtures and
// compares the findings with the checked-in golden file. Regenerate goldens
// with DSALINT_UPDATE=1 go test ./internal/analysis.
func TestPassFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkgs := loadFixtures(t, tc.dirs...)
			r := &Runner{Analyzers: []*Analyzer{tc.analyzer}, Disabled: map[string]bool{}}
			got := renderDiags(r.Run(pkgs))
			if got == "" {
				t.Fatalf("%s caught nothing; every pass must detect its seeded violations", tc.analyzer.Name)
			}

			golden := filepath.Join("testdata", tc.dirs[0], "expected.golden")
			if os.Getenv("DSALINT_UPDATE") != "" {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with DSALINT_UPDATE=1 to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixtureNegativesAreCovered asserts no finding ever points into a
// good.go or *_test.go fixture file: the clean counterparts must stay clean.
func TestFixtureNegativesAreCovered(t *testing.T) {
	for _, tc := range fixtureCases {
		pkgs := loadFixtures(t, tc.dirs...)
		r := &Runner{Analyzers: []*Analyzer{tc.analyzer}, Disabled: map[string]bool{}}
		for _, d := range r.Run(pkgs) {
			base := filepath.Base(d.File)
			if base == "good.go" || strings.HasSuffix(base, "_test.go") || strings.Contains(d.File, "other") || strings.Contains(d.File, "xrand") {
				t.Errorf("%s flagged a clean fixture: %s", tc.analyzer.Name, d)
			}
		}
	}
}
