package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ForkAbsorb machine-checks the fork/absorb discipline the parallel engine
// is built on. Two contracts:
//
//  1. Pairing: a fan-out that derives per-task children (Observer.ForkN,
//     Trace.Fork, DeviceInjector.Fork — any in-module method named Fork or
//     ForkN whose receiver type also has an Absorb/AbsorbAll counterpart)
//     must be absorbed back in task order on the success path: the absorb
//     call must be a sibling statement of the fork (or deferred), not
//     buried in one branch of a conditional. Error paths deliberately skip
//     absorption (absorb-nothing-on-error keeps the parent untouched), so
//     early returns between fork and absorb are fine; what is not fine is
//     an absorb that only happens when some condition holds. Results that
//     escape — returned, stored in a composite, or handed whole to another
//     function — transfer the obligation to the consumer and are exempt.
//
//  2. Pre-split: deriving a stream inside a parallel task (Split/SplitN/
//     Fork/ForkN on a receiver captured from outside a pool closure or go
//     statement) makes the derivation order follow the schedule, which is
//     exactly what the pre-split-in-task-order idiom exists to prevent.
//     Receivers that are task-local — indexed or derived from the task's
//     index parameter — are the sanctioned pattern and stay silent.
var ForkAbsorb = &Analyzer{
	Name: "forkabsorb",
	Doc:  "flag fork fan-outs that are never absorbed in order, and forks made inside parallel tasks on shared receivers",
	Run:  runForkAbsorb,
}

var forkMethodNames = map[string]bool{"Fork": true, "ForkN": true, "Split": true, "SplitN": true}

func runForkAbsorb(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	for _, n := range pass.Prog.Funcs {
		if n.Pkg == nil || n.Pkg.ImportPath != pass.ImportPath || pass.IsTestFile(n.Body.Pos()) {
			continue
		}
		// Literals are checked through their enclosing declaration (the
		// pairing scan must see absorbs in the outer body), and through the
		// pool-closure scan below.
		if _, ok := n.Decl.(*ast.FuncDecl); ok {
			checkForkPairing(pass, n.Body)
		}
	}
	checkInTaskForks(pass)
}

// forkSite is one fan-out assignment awaiting an absorb.
type forkSite struct {
	obj    types.Object // the variable holding the fork result
	method string       // Fork or ForkN
	pos    token.Pos
	block  ast.Node // innermost block-like container of the statement
}

// checkForkPairing enforces contract 1 over one declared function body,
// nested literals included (a helper closure may legally absorb for its
// encloser, and sibling analysis still applies within the literal).
func checkForkPairing(pass *Pass, body *ast.BlockStmt) {
	blocks := blockOf(body)

	var forks []forkSite
	absorbBlocks := map[types.Object][]ast.Node{} // absorb arg -> containers (nil = deferred)
	escaped := map[types.Object]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				call, ok := unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(x.Lhs) {
					continue
				}
				name, recv := forkCall(pass, call)
				if name != "Fork" && name != "ForkN" {
					continue
				}
				if !hasAbsorbCounterpart(recv, name) {
					continue
				}
				obj := identObject(pass, x.Lhs[i])
				if obj == nil {
					continue
				}
				forks = append(forks, forkSite{obj: obj, method: name, pos: x.Pos(), block: blocks[x]})
			}
		case *ast.CallExpr:
			if name := absorbName(x); name != "" {
				for _, arg := range x.Args {
					if obj := identObject(pass, unparen(arg)); obj != nil {
						absorbBlocks[obj] = append(absorbBlocks[obj], blocks[x])
					}
				}
				return true
			}
			// A fork result passed whole to any other call escapes: the
			// callee owns the absorb obligation now.
			for _, arg := range x.Args {
				if obj := identObject(pass, unparen(arg)); obj != nil {
					escaped[obj] = true
				}
			}
		case *ast.DeferStmt:
			if name := absorbName(x.Call); name != "" {
				for _, arg := range x.Call.Args {
					if obj := identObject(pass, unparen(arg)); obj != nil {
						absorbBlocks[obj] = append(absorbBlocks[obj], nil)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				markWholeUses(pass, res, escaped)
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				markWholeUses(pass, elt, escaped)
			}
		}
		return true
	})

	for _, f := range forks {
		if escaped[f.obj] {
			continue
		}
		absorbs, ok := absorbBlocks[f.obj]
		if !ok {
			pass.Reportf(f.pos, "%s result %s is never absorbed; fan-outs must be folded back in task order (AbsorbAll/Absorb) or handed off whole", f.method, f.obj.Name())
			continue
		}
		onAllPaths := false
		for _, b := range absorbs {
			if b == nil || b == f.block {
				onAllPaths = true
				break
			}
		}
		if !onAllPaths {
			pass.Reportf(f.pos, "%s result %s is absorbed only inside a conditional; absorb must be a sibling of the fork (or deferred) so every success path folds the children back", f.method, f.obj.Name())
		}
	}
}

// checkInTaskForks enforces contract 2: fan-out calls on schedule-shared
// receivers inside pool closures and go statements.
func checkInTaskForks(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if lit, idx := poolClosure(pass, x); lit != nil {
				checkTaskBody(pass, lit, idx)
			}
		case *ast.GoStmt:
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
				checkTaskBody(pass, lit, nil)
			}
		}
		return true
	})
}

// checkTaskBody flags fan-out calls on captured, non-task-derived receivers
// within one task closure. idxParams holds the engine-supplied index
// parameter objects (empty for plain go statements, which have no sanctioned
// index).
func checkTaskBody(pass *Pass, lit *ast.FuncLit, idxParams []types.Object) {
	if pass.IsTestFile(lit.Pos()) {
		return
	}
	var taint taintSet
	if len(idxParams) > 0 {
		taint = localTaint(pass, lit.Body, idxParams)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _ := forkCall(pass, call)
		if name == "" {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		captured, obj := capturedObject(pass, sel.X, lit.Pos(), lit.End())
		if !captured {
			return true
		}
		if taint != nil && exprMentions(pass, sel.X, taint) {
			return true // task-local stream: rngs[i].Split() and friends
		}
		pass.Reportf(call.Pos(), "%s on shared %s inside a parallel task; derivation order follows the schedule — pre-split in task order before the pool", name, obj.Name())
		return true
	})
}

// forkCall returns the fan-out method name and receiver type when call is a
// Fork/ForkN/Split/SplitN method call on an in-module type, else ("", nil).
func forkCall(pass *Pass, call *ast.CallExpr) (string, types.Type) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !forkMethodNames[sel.Sel.Name] {
		return "", nil
	}
	obj, ok := useOrDef(pass, sel.Sel).(*types.Func)
	if !ok || obj.Pkg() == nil {
		return "", nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", nil
	}
	mod := pass.ModulePathOf()
	path := obj.Pkg().Path()
	if path != mod && !strings.HasPrefix(path, mod+"/") {
		return "", nil
	}
	return sel.Sel.Name, sig.Recv().Type()
}

// hasAbsorbCounterpart reports whether the receiver type of a Fork/ForkN
// method also offers the matching Absorb/AbsorbAll, which is what makes the
// pairing contract apply (types without an absorb API — xrand.Rand,
// gpusim.Device — hand the obligation to container-level absorb helpers).
func hasAbsorbCounterpart(recv types.Type, forkName string) bool {
	want := "Absorb"
	if forkName == "ForkN" {
		want = "AbsorbAll"
	}
	if recv == nil {
		return false
	}
	if _, ok := recv.(*types.Pointer); !ok {
		recv = types.NewPointer(recv)
	}
	ms := types.NewMethodSet(recv)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == want {
			return true
		}
	}
	return false
}

// absorbName returns "Absorb"/"AbsorbAll" when call is such a method call.
func absorbName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Absorb" || sel.Sel.Name == "AbsorbAll" {
			return sel.Sel.Name
		}
	}
	return ""
}

// markWholeUses marks every bare identifier mentioned in e as escaped.
func markWholeUses(pass *Pass, e ast.Expr, escaped map[types.Object]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := useOrDef(pass, id); obj != nil {
				escaped[obj] = true
			}
		}
		return true
	})
}

// poolEntrypoints are the parallel-engine calls that hand a task closure its
// partitioning keys: ForEach/Map pass one task index, ForEachChunked passes a
// [lo, hi) index range.
var poolEntrypoints = map[string]bool{"ForEach": true, "Map": true, "ForEachChunked": true}

// poolClosure returns the task closure and its engine-supplied index
// parameter objects when call is parallel.ForEach, parallel.Map or
// parallel.ForEachChunked with a literal task function.
func poolClosure(pass *Pass, call *ast.CallExpr) (*ast.FuncLit, []types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !poolEntrypoints[sel.Sel.Name] {
		return nil, nil
	}
	obj, ok := useOrDef(pass, sel.Sel).(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Name() != "parallel" {
		return nil, nil
	}
	if len(call.Args) == 0 {
		return nil, nil
	}
	lit, ok := unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
	if !ok {
		return nil, nil
	}
	return lit, taskIndexParams(pass, lit)
}

// taskIndexParams resolves the partitioning-key parameters of a pool task
// closure to their objects: every integer parameter is engine-supplied — the
// task index of ForEach/Map, or the lo/hi range bounds of ForEachChunked
// (the context parameter, when present, is not an integer and stays out).
func taskIndexParams(pass *Pass, lit *ast.FuncLit) []types.Object {
	params := lit.Type.Params
	if params == nil || pass.Info == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil || obj.Type() == nil {
				continue
			}
			if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
				objs = append(objs, obj)
			}
		}
	}
	return objs
}

// ModulePathOf returns the module path of the analyzed tree, derived from
// the loader via the package metadata.
func (p *Pass) ModulePathOf() string {
	if p.Prog != nil && p.Prog.ModulePath != "" {
		return p.Prog.ModulePath
	}
	// Fallback: strip the package dir suffix from the import path.
	if p.Dir == "." || p.Dir == "" {
		return p.ImportPath
	}
	return strings.TrimSuffix(p.ImportPath, "/"+p.Dir)
}

// blockOf maps every statement-bearing node under root to its innermost
// enclosing block-like container (BlockStmt, CaseClause, CommClause). Used
// for sibling analysis: two statements with the same container are on the
// same straight-line path.
func blockOf(root ast.Node) map[ast.Node]ast.Node {
	out := map[ast.Node]ast.Node{}
	var stack []ast.Node // ancestor chain; ast.Inspect signals pops with nil
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		for i := len(stack) - 1; i >= 0; i-- {
			if isBlockLike(stack[i]) {
				out[n] = stack[i]
				break
			}
		}
		stack = append(stack, n)
		return true
	})
	return out
}

func isBlockLike(n ast.Node) bool {
	switch n.(type) {
	case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
		return true
	}
	return false
}
