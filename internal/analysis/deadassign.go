package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DeadAssign flags statements of the form `_ = x` that discard a non-error
// value. Outside tests (benchmarks legitimately sink results to defeat
// dead-code elimination) such discards are either leftovers from a refactor
// or — worse — a computed physical quantity silently dropped on the floor.
// Error values are exempt: `_ = f.Close()` is an explicit, idiomatic choice.
var DeadAssign = &Analyzer{
	Name: "deadassign",
	Doc:  "flag `_ = x` discards of non-error values outside _test.go files",
	Run:  runDeadAssign,
}

func runDeadAssign(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		x, ok := n.(*ast.AssignStmt)
		if !ok || x.Tok != token.ASSIGN || len(x.Lhs) != 1 || len(x.Rhs) != 1 {
			return true
		}
		lhs, ok := x.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name != "_" {
			return true
		}
		if pass.IsTestFile(x.Pos()) {
			return true
		}
		t := pass.TypeOf(x.Rhs[0])
		if t == nil || isErrorType(t) {
			return true
		}
		pass.Reportf(x.Pos(), "value of type %s discarded with `_ =`; use it or delete the statement", t)
		return true
	})
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
