// Package analysis is a stdlib-only static-analysis framework encoding the
// repository's domain invariants: dimensioned quantities stay dimensionally
// consistent, randomness flows through the seeded xrand streams, map
// iteration never feeds nondeterministic orderings into model training, and
// goroutines launched in the hot packages are always joined.
//
// The framework deliberately avoids golang.org/x/tools: packages are
// discovered by walking the module tree (skipping testdata, vendor and
// hidden directories), parsed with go/parser, and type-checked with go/types
// through a recursive in-module importer (stdlib imports resolve through the
// source importer). Each Analyzer receives a fully parsed and — when
// type-checking succeeds — typed package and reports Diagnostics; the Runner
// aggregates, suppresses (`//dsalint:ignore <pass>`), and orders them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pass    string         `json:"pass"`
	Pos     token.Position `json:"-"`
	File    string         `json:"file"`
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Message string         `json:"message"`
}

// String renders the finding in the canonical file:line:col: [pass] message
// form the driver prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Pass, d.Message)
}

// Pass is the per-package context handed to each Analyzer run.
type Pass struct {
	// Fset positions every AST node of the package.
	Fset *token.FileSet
	// Files are the parsed files of the package (tests included).
	Files []*ast.File
	// Dir is the package directory relative to the module root, "" for the
	// root package itself.
	Dir string
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Info carries type-checking results. It is always non-nil, but entries
	// may be missing for code the checker could not resolve; passes must
	// treat absent types as "unknown", not as a match.
	Info *types.Info
	// Prog is the whole-module call graph built once per Runner.Run and
	// shared by every pass; interprocedural passes reach through it, local
	// passes ignore it. Nil only when a pass is run outside a Runner.
	Prog *Program

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pass:    p.analyzer,
		Pos:     position,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when type information is unavailable.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzer is one named pass.
type Analyzer struct {
	// Name is the pass identifier used in output, -disable flags and
	// //dsalint:ignore directives.
	Name string
	// Doc is a one-line description shown by the driver's usage text.
	Doc string
	// Run inspects one package and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// All returns the full built-in pass suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		UnitCheck,
		FloatEq,
		RandSource,
		MapOrder,
		GoroLeak,
		DeadAssign,
		SortSlice,
		ForkAbsorb,
		WallClock,
		DetLoop,
		SharedWrite,
		FloatAcc,
	}
}

// sortDiagnostics orders findings by file, line, column, pass and finally
// message, making output stable across runs and map-iteration orders.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
}
