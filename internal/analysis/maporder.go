package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` over a map whose body appends to a slice declared
// outside the loop, unless the enclosing function later hands that slice to
// a sort.* call. Go randomizes map iteration order, so such a slice is a
// different permutation on every run; feed it to training, fitting or
// serialization and the model (and every figure derived from it) becomes
// nondeterministic. Sorting the accumulated slice — the repository's
// standing idiom — restores a canonical order and silences the pass.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map-ordered slice accumulation that is not sorted before use",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, fn := range enclosingFuncs(f) {
			checkMapOrderFunc(pass, fn)
		}
	}
}

func checkMapOrderFunc(pass *Pass, fn funcNode) {
	// Collect the objects passed to sort.* anywhere in this function: those
	// slices end up in canonical order regardless of how they were filled.
	sorted := map[types.Object]bool{}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "sort" {
			return true
		}
		for _, arg := range call.Args {
			if obj := identObject(pass, arg); obj != nil {
				sorted[obj] = true
			}
		}
		return true
	})

	ast.Inspect(fn.body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypeOf(rng.X); t == nil || !isMapType(t) {
			return true
		}
		// Find appends inside the range body that grow an identifier
		// declared outside the range statement.
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range asg.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(asg.Lhs) {
					continue
				}
				obj := identObject(pass, asg.Lhs[i])
				if obj == nil || sorted[obj] {
					continue
				}
				// Accumulators scoped inside the loop reset every
				// iteration and cannot leak the map order.
				if obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End() {
					continue
				}
				pass.Reportf(asg.Pos(),
					"slice %s accumulates in map iteration order; sort it before use or iterate sorted keys", obj.Name())
			}
			return true
		})
		return true
	})
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if pass.Info == nil {
		return true
	}
	// Confirm it is the builtin, not a shadowing local.
	if obj, ok := pass.Info.Uses[id]; ok {
		_, builtin := obj.(*types.Builtin)
		return builtin
	}
	return true
}

// identObject resolves an expression to the object of its base identifier,
// unwrapping parens; returns nil for anything more complex.
func identObject(pass *Pass, e ast.Expr) types.Object {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	id, ok := e.(*ast.Ident)
	if !ok || pass.Info == nil {
		return nil
	}
	if obj, ok := pass.Info.Uses[id]; ok {
		return obj
	}
	return pass.Info.Defs[id]
}
