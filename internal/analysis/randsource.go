package analysis

import (
	"strconv"
	"strings"
)

// RandSource forbids math/rand (and math/rand/v2) everywhere except
// internal/xrand. Every stochastic component of the stack draws from the
// seeded, splittable xrand streams so characterization runs, training sets
// and tests are bit-for-bit reproducible; math/rand's global source would
// silently break that guarantee the moment any goroutine interleaving
// changes.
var RandSource = &Analyzer{
	Name: "randsource",
	Doc:  "forbid math/rand outside internal/xrand; use the seeded xrand streams",
	Run:  runRandSource,
}

func runRandSource(pass *Pass) {
	if pass.ImportPath == "internal/xrand" || strings.HasSuffix(pass.ImportPath, "/internal/xrand") {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s outside internal/xrand; use the deterministic xrand streams", path)
			}
		}
	}
}
