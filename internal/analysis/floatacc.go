package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatAcc flags floating-point reductions whose accumulation order is not
// fixed by the program. Float addition is not associative: summing the same
// values in a different order changes low-order bits, and this repository
// pins its results byte-for-byte, so "the same sum either way" is not true
// here. Two orderings are nondeterministic and therefore flagged:
//
//   - map iteration order: sum += v inside range over a map — Go randomizes
//     the iteration per run, so the reduction differs between runs;
//   - goroutine schedule order: a compound float assignment to a variable
//     captured by a go-statement closure or a pool task closure — the
//     interleaving picks the order (and unsynchronized, it is also a race).
//
// The standing fixes: iterate sorted keys, or reduce per task into slots
// and fold the slots in task order after the join.
var FloatAcc = &Analyzer{
	Name: "floatacc",
	Doc:  "flag float accumulation in map-iteration or goroutine-schedule order",
	Run:  runFloatAcc,
}

func runFloatAcc(pass *Pass) {
	inspect(pass, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if t := pass.TypeOf(x.X); t != nil && isMapType(t) && !pass.IsTestFile(x.Pos()) {
				checkMapRangeFloats(pass, x)
			}
		case *ast.GoStmt:
			if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok && !pass.IsTestFile(x.Pos()) {
				checkCapturedFloatAcc(pass, lit, nil)
			}
		case *ast.CallExpr:
			if lit, idx := poolClosure(pass, x); lit != nil && !pass.IsTestFile(lit.Pos()) {
				checkCapturedFloatAcc(pass, lit, idx)
			}
		}
		return true
	})
}

// checkMapRangeFloats flags float accumulation into targets declared outside
// the range body: each iteration folds into the running value in map order.
// Loop-local accumulators reset every iteration and stay silent.
func checkMapRangeFloats(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := accumulationTarget(pass, asg)
		if !ok {
			return true
		}
		obj := identObject(pass, baseExpr(lhs))
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() <= rng.End()) {
			return true
		}
		pass.Reportf(asg.Pos(), "float accumulation into %s in map iteration order; float addition is not associative — iterate sorted keys", obj.Name())
		return true
	})
}

// checkCapturedFloatAcc flags compound float assignments to captured
// variables inside a concurrent closure. Index-disjoint slot writes
// (acc[i] += v with i derived from the task index or chunk bounds) are the
// sanctioned reduction shape and stay silent.
func checkCapturedFloatAcc(pass *Pass, lit *ast.FuncLit, idxParams []types.Object) {
	var taint taintSet
	if len(idxParams) > 0 {
		taint = localTaint(pass, lit.Body, idxParams)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := accumulationTarget(pass, asg)
		if !ok {
			return true
		}
		captured, obj := capturedObject(pass, lhs, lit.Pos(), lit.End())
		if !captured {
			return true
		}
		if ie, isIdx := unparen(lhs).(*ast.IndexExpr); isIdx && indexChainMentions(pass, ie, taint) {
			return true
		}
		pass.Reportf(asg.Pos(), "float accumulation into captured %s in goroutine schedule order; reduce into per-task slots and fold after the join", obj.Name())
		return true
	})
}

// accumulationTarget returns the LHS of a float accumulation: x += e,
// x -= e, x *= e, x /= e, or x = x ⊕ e (either operand position).
func accumulationTarget(pass *Pass, asg *ast.AssignStmt) (ast.Expr, bool) {
	if len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return nil, false
	}
	lhs := asg.Lhs[0]
	if !isFloat(pass.TypeOf(lhs)) {
		return nil, false
	}
	switch asg.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		bin, ok := unparen(asg.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return nil, false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return nil, false
		}
		lobj := identObject(pass, baseExpr(lhs))
		if lobj == nil {
			return nil, false
		}
		for _, operand := range []ast.Expr{bin.X, bin.Y} {
			if o := identObject(pass, baseExpr(operand)); o == lobj {
				return lhs, true
			}
		}
	}
	return nil, false
}
