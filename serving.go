package dsenergy

import "dsenergy/internal/serve"

// Frequency-advisor serving: the trained models deployed behind a
// long-running advisory service. A versioned registry hot-reloads persisted
// models without dropping queries, duplicate in-flight requests coalesce
// into batched inference, and an LRU admission tier absorbs repeat queries —
// all on simulated time, so a multi-million-request load replays
// byte-identically.

type (
	// ServeRegistry is the versioned (app, device) model registry with
	// RCU-style atomic hot-reload.
	ServeRegistry = serve.Registry
	// ServeEntry is one immutable published model version.
	ServeEntry = serve.Entry
	// ServeResponse is one advisory answer: the recommended clock and its
	// predicted time/energy, attributed to the model version that made it.
	ServeResponse = serve.Response
	// ServeConfig configures a serving campaign.
	ServeConfig = serve.Config
	// ServeShardConfig configures one per-device advisor shard.
	ServeShardConfig = serve.ShardConfig
	// ServeShape is one element of a shard's request universe.
	ServeShape = serve.Shape
	// ServeReload schedules a model publish at an instant of simulated time.
	ServeReload = serve.Reload
	// ServeLoad configures a shard's synthetic load generator.
	ServeLoad = serve.Load
	// ServeReport is the SLO accounting of one serving campaign.
	ServeReport = serve.Report
)

// NewServeRegistry returns an empty model registry for one device.
func NewServeRegistry(device string) *ServeRegistry { return serve.NewRegistry(device) }

// RunServe executes a serving campaign and returns its SLO report.
func RunServe(cfg ServeConfig) (*ServeReport, error) { return serve.Run(cfg) }
