package dsenergy_test

import (
	"fmt"
	"log"

	"dsenergy"
)

// Example demonstrates the minimal measurement flow: open the simulated
// testbed and compare a workload's energy at two clocks.
func Example() {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		log.Fatal(err)
	}
	v100 := tb.Queues()[0]
	w, err := dsenergy.NewCronosWorkload(160, 64, 64, 10)
	if err != nil {
		log.Fatal(err)
	}
	base, _ := dsenergy.MeasureAt(v100, w, v100.BaselineFreqMHz(), 5)
	low, _ := dsenergy.MeasureAt(v100, w, v100.Spec().NearestFreqMHz(900), 5)
	fmt.Printf("down-clocking a memory-bound stencil saves energy: %v\n",
		low.EnergyJ < base.EnergyJ)
	fmt.Printf("while losing under 2%% performance: %v\n",
		low.TimeS < base.TimeS*1.02)
	// Output:
	// down-clocking a memory-bound stencil saves energy: true
	// while losing under 2% performance: true
}

// ExampleParetoFront extracts the Pareto-optimal frequency configurations
// from a set of measured (speedup, normalized energy) outcomes.
func ExampleParetoFront() {
	points := []dsenergy.ParetoPoint{
		{FreqMHz: 1597, Speedup: 1.20, NormEnergy: 1.35},
		{FreqMHz: 1297, Speedup: 1.00, NormEnergy: 1.00},
		{FreqMHz: 1000, Speedup: 0.82, NormEnergy: 0.88},
		{FreqMHz: 900, Speedup: 0.75, NormEnergy: 0.95}, // dominated by 1000
	}
	for _, p := range dsenergy.ParetoFront(points) {
		fmt.Printf("%d MHz: speedup %.2f, energy %.2f\n", p.FreqMHz, p.Speedup, p.NormEnergy)
	}
	// Output:
	// 1597 MHz: speedup 1.20, energy 1.35
	// 1297 MHz: speedup 1.00, energy 1.00
	// 1000 MHz: speedup 0.82, energy 0.88
}

// ExampleEnergyTarget shows SYnergy's energy-target policy selecting the
// fastest configuration within an energy budget.
func ExampleEnergyTarget() {
	curve := []dsenergy.CurvePoint{
		{FreqMHz: 1000, Speedup: 0.82, NormEnergy: 0.88},
		{FreqMHz: 1200, Speedup: 0.93, NormEnergy: 0.92},
		{FreqMHz: 1297, Speedup: 1.00, NormEnergy: 1.00},
		{FreqMHz: 1597, Speedup: 1.20, NormEnergy: 1.35},
	}
	policy := dsenergy.EnergyTarget(0.95) // ask for >= 5% energy reduction
	choice := policy.Select(curve)
	fmt.Printf("%d MHz (speedup %.2f at %.0f%% of baseline energy)\n",
		choice.FreqMHz, choice.Speedup, choice.NormEnergy*100)
	// Output:
	// 1200 MHz (speedup 0.93 at 92% of baseline energy)
}

// ExampleScreen runs a tiny CPU-reference virtual-screening campaign.
func ExampleScreen() {
	pocket, err := dsenergy.GenPocket(7, 16, 10)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := dsenergy.GenLigandLibrary(11, 4, 20, 3)
	if err != nil {
		log.Fatal(err)
	}
	ranking, err := dsenergy.Screen(lib, pocket, dsenergy.FastDockParams(), 2, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("screened %d ligands; best candidate %s\n", len(ranking), ranking[0].Name)
	fmt.Printf("ranking is descending: %v\n", ranking[0].Score >= ranking[len(ranking)-1].Score)
	// Output:
	// screened 4 ligands; best candidate lig-000000
	// ranking is descending: true
}
