package dsenergy_test

// Integration tests exercising the public facade end to end, the way a
// downstream user would: testbed -> workloads -> measurements -> dataset ->
// model -> Pareto prediction, plus the reference CPU applications.

import (
	"bytes"
	"math"
	"testing"

	"dsenergy"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		t.Fatal(err)
	}
	v100 := tb.Queues()[0]
	w, err := dsenergy.NewLiGenWorkload(dsenergy.LiGenInput{Ligands: 512, Atoms: 31, Fragments: 8})
	if err != nil {
		t.Fatal(err)
	}
	m, err := dsenergy.MeasureAt(v100, w, v100.BaselineFreqMHz(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.TimeS <= 0 || m.EnergyJ <= 0 {
		t.Fatalf("bad measurement %+v", m)
	}
}

func TestFacadeModelingPipeline(t *testing.T) {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		t.Fatal(err)
	}
	v100 := tb.Queues()[0]

	var wls []dsenergy.FeaturedWorkload
	for _, g := range [][3]int{{10, 4, 4}, {20, 8, 8}, {40, 16, 16}} {
		w, err := dsenergy.NewCronosWorkload(g[0], g[1], g[2], 4)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, dsenergy.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(g[0]), float64(g[1]), float64(g[2])},
		})
	}
	band := v100.Spec().FreqsAbove(0.5)
	var freqs []int
	for i := 0; i < len(band); i += 12 {
		freqs = append(freqs, band[i])
	}
	freqs = append(freqs, v100.BaselineFreqMHz(), v100.Spec().FMaxMHz())
	freqs = dedupSortInts(freqs)

	ds, err := dsenergy.BuildDataset(v100, dsenergy.CronosSchema(), wls,
		dsenergy.BuildConfig{Freqs: freqs, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	model, err := dsenergy.TrainNormalized(ds, dsenergy.RandomForestSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	curves := model.PredictCurves([]float64{20, 8, 8}, freqs)
	if len(curves) != len(freqs) {
		t.Fatalf("curve length %d, want %d", len(curves), len(freqs))
	}
	for _, c := range curves {
		if math.IsNaN(c.Speedup) || c.Speedup <= 0 {
			t.Fatalf("bad curve point %+v", c)
		}
	}
	var pts []dsenergy.ParetoPoint
	for _, c := range curves {
		pts = append(pts, dsenergy.ParetoPoint{FreqMHz: c.FreqMHz, Speedup: c.Speedup, NormEnergy: c.NormEnergy})
	}
	if front := dsenergy.ParetoFront(pts); len(front) == 0 {
		t.Fatal("empty Pareto front")
	}

	accs, err := dsenergy.LeaveOneInputOut(ds, dsenergy.RandomForestSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 3 {
		t.Fatalf("want 3 accuracies, got %d", len(accs))
	}
}

func TestFacadeMHDApplication(t *testing.T) {
	s, err := dsenergy.NewMHDSolver(dsenergy.MHDConfig{NX: 12, NY: 12, NZ: 12, Boundary: dsenergy.MHDPeriodic})
	if err != nil {
		t.Fatal(err)
	}
	dsenergy.InitMHDBlastWave(s.Grid, 0.1, 10, 0.2)
	mass0 := s.Grid.TotalMass()
	if err := s.Run(0.02, 10); err != nil {
		t.Fatal(err)
	}
	if s.StepsRun == 0 {
		t.Fatal("no steps taken")
	}
	if d := math.Abs(s.Grid.TotalMass() - mass0); d > 1e-10 {
		t.Errorf("mass drift %g", d)
	}
}

func TestFacadeDrugDiscoveryApplication(t *testing.T) {
	pocket, err := dsenergy.GenPocket(7, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := dsenergy.GenLigandLibrary(11, 6, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	ranking, err := dsenergy.Screen(lib, pocket, dsenergy.FastDockParams(), 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranking) != 6 {
		t.Fatalf("ranking size %d, want 6", len(ranking))
	}
	for i := 1; i < len(ranking); i++ {
		if ranking[i].Score > ranking[i-1].Score {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestFacadeDeviceSpecs(t *testing.T) {
	v := dsenergy.V100Spec()
	m := dsenergy.MI100Spec()
	if v.Name != "NVIDIA V100" || m.Name != "AMD MI100" {
		t.Errorf("preset names %q, %q", v.Name, m.Name)
	}
	if len(v.CoreFreqsMHz) != 196 {
		t.Errorf("V100 frequency table %d entries, want 196", len(v.CoreFreqsMHz))
	}
}

func TestExperimentConfigs(t *testing.T) {
	def := dsenergy.DefaultExperimentConfig()
	quick := dsenergy.QuickExperimentConfig()
	if def.Reps != 5 {
		t.Errorf("paper config reps %d, want 5", def.Reps)
	}
	if quick.FreqStride <= def.FreqStride {
		t.Error("quick config should subsample more aggressively")
	}
}

func dedupSortInts(fs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range fs {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func TestFacadeTuningPolicies(t *testing.T) {
	curve := []dsenergy.CurvePoint{
		{FreqMHz: 1000, Speedup: 0.8, NormEnergy: 0.88},
		{FreqMHz: 1297, Speedup: 1.0, NormEnergy: 1.0},
		{FreqMHz: 1597, Speedup: 1.2, NormEnergy: 1.35},
	}
	if got := dsenergy.MaxPerformance().Select(curve).FreqMHz; got != 1597 {
		t.Errorf("max-performance chose %d", got)
	}
	if got := dsenergy.MinEnergy().Select(curve).FreqMHz; got != 1000 {
		t.Errorf("min-energy chose %d", got)
	}
	if got := dsenergy.EnergyTarget(0.9).Select(curve).FreqMHz; got != 1000 {
		t.Errorf("energy-target chose %d", got)
	}
	if got := dsenergy.PerfConstraint(0.95).Select(curve).FreqMHz; got != 1297 {
		t.Errorf("perf-constraint chose %d", got)
	}
	if dsenergy.MinEDP().Name() == "" || dsenergy.MinED2P().Name() == "" {
		t.Error("EDP policies unnamed")
	}
}

func TestFacadePowerTrace(t *testing.T) {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		t.Fatal(err)
	}
	q := tb.Queues()[0]
	w, _ := dsenergy.NewCronosWorkload(20, 8, 8, 2)
	if _, _, err := w.RunOn(q); err != nil {
		t.Fatal(err)
	}
	events := q.Events()
	var total float64
	for _, e := range events {
		total += e.TimeS
	}
	trace, err := dsenergy.PowerTrace(events, total/8)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 4 {
		t.Errorf("trace too sparse: %d", len(trace))
	}
}

func TestFacadeDatasetCSV(t *testing.T) {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		t.Fatal(err)
	}
	q := tb.Queues()[0]
	w, _ := dsenergy.NewCronosWorkload(10, 4, 4, 2)
	ds, err := dsenergy.BuildDataset(q, dsenergy.CronosSchema(),
		[]dsenergy.FeaturedWorkload{{Workload: w, Features: []float64{10, 4, 4}}},
		dsenergy.BuildConfig{Freqs: []int{q.BaselineFreqMHz(), q.Spec().FMaxMHz()}, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := dsenergy.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(ds.Samples) {
		t.Errorf("round trip lost samples: %d vs %d", len(got.Samples), len(ds.Samples))
	}
}

func TestFacadeBranchedLigandSerialization(t *testing.T) {
	l, err := dsenergy.GenLigandBranched(5, "b", 30, 4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dsenergy.WriteLigand(&buf, l); err != nil {
		t.Fatal(err)
	}
	got, err := dsenergy.ReadLigand(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumAtoms() != 30 || got.NumFragments() != 4 {
		t.Errorf("round trip structure: %d atoms, %d fragments", got.NumAtoms(), got.NumFragments())
	}
}

// TestGoldenMeasurements freezes two end-to-end measurement values. Any
// change to the simulator's constants, the noise stream, or the workload
// profiles shifts these numbers; the test makes such changes conscious —
// recalibrate deliberately, then update the golden values (the shape tests
// in internal/experiments must still pass).
func TestGoldenMeasurements(t *testing.T) {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		t.Fatal(err)
	}
	v100 := tb.Queues()[0]

	w, _ := dsenergy.NewCronosWorkload(20, 8, 8, 4)
	m, err := dsenergy.MeasureAt(v100, w, v100.BaselineFreqMHz(), 5)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cronos-20x8x8 time", m.TimeS, 0.000480739182)
	checkGolden(t, "cronos-20x8x8 energy", m.EnergyJ, 0.0377027341)

	l, _ := dsenergy.NewLiGenWorkload(dsenergy.LiGenInput{Ligands: 1024, Atoms: 63, Fragments: 8})
	m2, err := dsenergy.MeasureAt(v100, l, v100.Spec().FMaxMHz(), 3)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ligen-1024x63x8 time", m2.TimeS, 0.039860029)
	checkGolden(t, "ligen-1024x63x8 energy", m2.EnergyJ, 7.65534091)
}

func checkGolden(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Errorf("%s = %.9g, golden %.9g (simulator constants changed?)", name, got, want)
	}
}
