module dsenergy

go 1.22
