package dsenergy

import (
	"dsenergy/internal/core"
	"dsenergy/internal/ml"
	"dsenergy/internal/synergy"
	"dsenergy/internal/tuner"
)

// This file exposes the frequency-tuning layer — the paper's §7 integration
// path: model-driven frequency selection (SYnergy's energy-target metric)
// and per-kernel frequency scaling.

type (
	// Policy selects one frequency from a predicted trade-off curve.
	Policy = tuner.Policy
	// Tuner couples a domain-specific model with a selection policy.
	Tuner = tuner.Tuner
	// PerKernelTuner holds one model per application kernel.
	PerKernelTuner = tuner.PerKernelTuner
	// TuningPlan is a per-kernel frequency assignment.
	TuningPlan = tuner.Plan
	// TuningOutcome is the measured effect of a plan vs the baseline clock.
	TuningOutcome = tuner.Outcome
	// KernelProfiler is a workload exposing its kernel decomposition.
	KernelProfiler = tuner.Profiler
)

// MaxPerformance returns the policy that maximizes predicted speedup.
func MaxPerformance() Policy { return tuner.MaxPerformance{} }

// MinEnergy returns the policy that minimizes predicted normalized energy.
func MinEnergy() Policy { return tuner.MinEnergy{} }

// EnergyTarget returns SYnergy's energy-target policy: the fastest
// configuration predicted to use at most target (fraction of baseline
// energy, e.g. 0.9 for a 10% reduction).
func EnergyTarget(target float64) Policy { return tuner.EnergyTarget{Target: target} }

// PerfConstraint returns the policy minimizing energy subject to keeping at
// least minSpeedup of the baseline performance.
func PerfConstraint(minSpeedup float64) Policy { return tuner.PerfConstraint{MinSpeedup: minSpeedup} }

// MinEDP returns the energy-delay-product-minimizing policy.
func MinEDP() Policy { return tuner.MinEDP{} }

// MinED2P returns the energy-delay²-product-minimizing policy.
func MinED2P() Policy { return tuner.MinED2P{} }

// NewTuner couples a trained model with a policy.
func NewTuner(model *Model, policy Policy) (*Tuner, error) { return tuner.New(model, policy) }

// TrainPerKernel trains one model per kernel of the featured workloads and
// returns a tuner that plans per-kernel clocks (SYnergy's per-kernel mode).
func TrainPerKernel(q *Queue, schema Schema, wls []FeaturedWorkload, cfg BuildConfig,
	spec ModelSpec, policy Policy, seed uint64) (*PerKernelTuner, error) {
	return tuner.TrainPerKernel(q, schema, wls, cfg, spec, policy, seed)
}

// Compile-time wiring checks: both applications satisfy the tuner's
// kernel-decomposition contract through the facade aliases.
var (
	_ synergy.Workload = CronosWorkload{}
	_ tuner.Profiler   = CronosWorkload{}
	_ tuner.Profiler   = LiGenWorkload{}
	_ ml.Regressor     = (*ml.Forest)(nil)
	_                  = core.FeatureKey
)
