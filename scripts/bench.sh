#!/bin/sh
# scripts/bench.sh — perf baseline for the deterministic parallel engine.
#
# Runs the serial-vs-parallel benchmarks and emits BENCH_parallel.json with
# the wall time of each arm and the parallel speedup, so perf regressions in
# the engine are diffable across commits:
#
#   ./scripts/bench.sh            # writes ./BENCH_parallel.json
#   OUT=/tmp/b.json ./scripts/bench.sh
#
# BENCHTIME controls averaging (default 3x; use 1x for a smoke run).
set -eu

cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_parallel.json}
BENCHTIME=${BENCHTIME:-3x}

BENCH_GOMAXPROCS=${GOMAXPROCS:-$(nproc)}
export BENCH_GOMAXPROCS

raw=$(go test -bench 'SweepSerialVsParallel|KFoldParallel' -benchtime "$BENCHTIME" -run '^$' .)
echo "$raw"

echo "$raw" | awk -v out="$OUT" '
/^BenchmarkSweepSerialVsParallel\/serial/   { sweep_s = $3 }
/^BenchmarkSweepSerialVsParallel\/parallel/ { sweep_p = $3 }
/^BenchmarkKFoldParallel\/serial/           { kfold_s = $3 }
/^BenchmarkKFoldParallel\/parallel/         { kfold_p = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (sweep_s == "" || sweep_p == "" || kfold_s == "" || kfold_p == "") {
        print "bench.sh: missing benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"gomaxprocs\": %d,\n", ENVIRON["BENCH_GOMAXPROCS"] >> out
    printf "  \"sweep\": {\"serial_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.3f},\n", sweep_s, sweep_p, sweep_s / sweep_p >> out
    printf "  \"kfold\": {\"serial_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.3f}\n", kfold_s, kfold_p, kfold_s / kfold_p >> out
    printf "}\n" >> out
}'

echo "wrote $OUT"
