#!/bin/sh
# scripts/bench.sh — perf baselines for the deterministic parallel engine and
# the ML training engine.
#
# Runs the serial-vs-parallel benchmarks and emits BENCH_parallel.json with
# the wall time of each arm and the parallel speedup, then runs the CART/
# forest training benchmarks and emits BENCH_ml.json comparing the current
# pre-sorted engine against the recorded legacy (per-node sort.Slice)
# baseline, then runs the deadline-aware scheduler benchmarks and emits
# BENCH_sched.json (campaign throughput in admitted jobs/sec plus per-dispatch
# decision latency), so perf regressions in any engine are diffable across
# commits:
#
#   ./scripts/bench.sh            # writes ./BENCH_parallel.json + ./BENCH_ml.json + ./BENCH_sched.json
#   OUT=/tmp/b.json ML_OUT=/tmp/ml.json SCHED_OUT=/tmp/s.json ./scripts/bench.sh
#
# BENCHTIME controls averaging (default 3x; use 1x for a smoke run).
set -eu

cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_parallel.json}
ML_OUT=${ML_OUT:-BENCH_ml.json}
SCHED_OUT=${SCHED_OUT:-BENCH_sched.json}
BENCHTIME=${BENCHTIME:-3x}

BENCH_GOMAXPROCS=${GOMAXPROCS:-$(nproc)}
export BENCH_GOMAXPROCS

raw=$(go test -bench 'SweepSerialVsParallel|KFoldParallel' -benchtime "$BENCHTIME" -run '^$' .)
echo "$raw"

echo "$raw" | awk -v out="$OUT" '
/^BenchmarkSweepSerialVsParallel\/serial/   { sweep_s = $3 }
/^BenchmarkSweepSerialVsParallel\/parallel/ { sweep_p = $3 }
/^BenchmarkKFoldParallel\/serial/           { kfold_s = $3 }
/^BenchmarkKFoldParallel\/parallel/         { kfold_p = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (sweep_s == "" || sweep_p == "" || kfold_s == "" || kfold_p == "") {
        print "bench.sh: missing benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"gomaxprocs\": %d,\n", ENVIRON["BENCH_GOMAXPROCS"] >> out
    printf "  \"sweep\": {\"serial_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.3f},\n", sweep_s, sweep_p, sweep_s / sweep_p >> out
    printf "  \"kfold\": {\"serial_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.3f}\n", kfold_s, kfold_p, kfold_s / kfold_p >> out
    printf "}\n" >> out
}'

echo "wrote $OUT"

# ML training engine: tree fit, the acceptance-gate forest fit (n=1000, d=16,
# 100 trees) and block prediction. The legacy_* fields below were measured
# once from the pre-refactor engine (per-node reflection sort.Slice, pointer
# nodes, per-node index allocation) at benchtime 3x on the reference runner
# (Intel Xeon @ 2.10GHz), and stay fixed so every rerun reports the speedup
# and allocation ratio of the pre-sorted SoA engine against that baseline.
mlraw=$(go test -bench 'TreeFit|ForestFitLarge|ForestPredictBatch' -benchmem -benchtime "$BENCHTIME" -run '^$' ./internal/ml)
echo "$mlraw"

echo "$mlraw" | awk -v out="$ML_OUT" '
/^BenchmarkTreeFit[-\t ]/            { tree_ns = $3; tree_allocs = $7 }
/^BenchmarkForestFitLarge[-\t ]/     { forest_ns = $3; forest_allocs = $7 }
/^BenchmarkForestPredictBatch[-\t ]/ { batch_ns = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (tree_ns == "" || forest_ns == "" || batch_ns == "") {
        print "bench.sh: missing ML benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    legacy_tree_ns = 16737282; legacy_tree_allocs = 48940
    legacy_forest_ns = 1545137444; legacy_forest_allocs = 2634758
    legacy_batch_ns = 21879380
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"legacy_cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz\",\n" >> out
    printf "  \"tree_fit\": {\"ns_op\": %s, \"allocs_op\": %s, \"legacy_ns_op\": %d, \"legacy_allocs_op\": %d, \"speedup\": %.3f, \"alloc_ratio\": %.3f},\n", \
        tree_ns, tree_allocs, legacy_tree_ns, legacy_tree_allocs, legacy_tree_ns / tree_ns, legacy_tree_allocs / tree_allocs >> out
    printf "  \"forest_fit_large\": {\"ns_op\": %s, \"allocs_op\": %s, \"legacy_ns_op\": %d, \"legacy_allocs_op\": %d, \"speedup\": %.3f, \"alloc_ratio\": %.3f},\n", \
        forest_ns, forest_allocs, legacy_forest_ns, legacy_forest_allocs, legacy_forest_ns / forest_ns, legacy_forest_allocs / forest_allocs >> out
    printf "  \"forest_predict_batch\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f}\n", \
        batch_ns, legacy_batch_ns, legacy_batch_ns / batch_ns >> out
    printf "}\n" >> out
}'

echo "wrote $ML_OUT"

# Deadline-aware scheduler: end-to-end campaign throughput (admitted jobs per
# second of wall time over a 96-job stream on a 4-device cluster) and the
# per-dispatch frequency-decision latency.
schedraw=$(go test -bench 'ScheduleStream|Decide' -benchtime "$BENCHTIME" -run '^$' ./internal/sched)
echo "$schedraw"

echo "$schedraw" | awk -v out="$SCHED_OUT" '
/^BenchmarkScheduleStream[-\t ]/ {
    for (i = 1; i < NF; i++) {
        if ($(i+1) == "ns/op") run_ns = $i
        if ($(i+1) == "jobs/s") jobs_s = $i
    }
}
/^BenchmarkDecide[-\t ]/ { decide_ns = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (run_ns == "" || jobs_s == "" || decide_ns == "") {
        print "bench.sh: missing scheduler benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"schedule_stream\": {\"ns_op\": %s, \"admitted_jobs_per_s\": %s},\n", run_ns, jobs_s >> out
    printf "  \"decide\": {\"ns_op\": %s}\n", decide_ns >> out
    printf "}\n" >> out
}'

echo "wrote $SCHED_OUT"
