#!/bin/sh
# scripts/bench.sh — perf baselines for the deterministic parallel engine and
# the ML training engine.
#
# Runs the serial-vs-parallel benchmarks (plus the engine's per-task dispatch
# overhead, per-index vs chunked) and emits BENCH_parallel.json with the wall
# time of each arm and the parallel speedup, then runs the CART/forest
# training and Lasso/SVR solver benchmarks and emits BENCH_ml.json comparing
# the current engines against their recorded legacy baselines, then runs the
# deadline-aware scheduler benchmarks and emits BENCH_sched.json (campaign
# throughput in admitted jobs/sec plus per-dispatch decision latency), then
# runs the Cronos MHD step benchmarks and emits BENCH_cronos.json comparing
# the tiled SoA stencil against the frozen pre-tiling baseline, then runs the
# frequency-advisor serving benchmarks and emits BENCH_serve.json (campaign
# throughput in answered requests/sec plus per-query cache-miss latency), then
# runs the gpusim analytic hot-path benchmarks and emits BENCH_gpusim.json
# comparing the compiled two-stage evaluator against the frozen pre-rewrite
# baseline, so perf regressions in any engine are diffable across commits:
#
#   ./scripts/bench.sh            # writes ./BENCH_parallel.json + ./BENCH_ml.json + ./BENCH_sched.json + ./BENCH_cronos.json + ./BENCH_serve.json + ./BENCH_gpusim.json
#   OUT=/tmp/b.json ML_OUT=/tmp/ml.json SCHED_OUT=/tmp/s.json CRONOS_OUT=/tmp/c.json SERVE_OUT=/tmp/v.json GPUSIM_OUT=/tmp/g.json ./scripts/bench.sh
#
# BENCHTIME controls averaging (default 3x; use 1x for a smoke run).
set -eu

cd "$(dirname "$0")/.."

OUT=${OUT:-BENCH_parallel.json}
ML_OUT=${ML_OUT:-BENCH_ml.json}
SCHED_OUT=${SCHED_OUT:-BENCH_sched.json}
CRONOS_OUT=${CRONOS_OUT:-BENCH_cronos.json}
SERVE_OUT=${SERVE_OUT:-BENCH_serve.json}
GPUSIM_OUT=${GPUSIM_OUT:-BENCH_gpusim.json}
BENCHTIME=${BENCHTIME:-3x}

# The serial-vs-parallel arms only mean something at the machine's real
# parallelism, so force GOMAXPROCS on every benchmark invocation below: a
# stray GOMAXPROCS=1 in the caller's environment used to silently serialize
# the "parallel" arms while the JSON still recorded the inherited value as if
# the arm had run at full width. Override with BENCH_GOMAXPROCS when pinning
# the runner on purpose.
BENCH_GOMAXPROCS=${BENCH_GOMAXPROCS:-$(nproc)}
export BENCH_GOMAXPROCS

# The sweep/kfold arms are millisecond-scale, so they need more averaging
# than the heavyweight macro benchmarks: at the old 3 iterations the timer
# noise exceeded the serial-vs-parallel margin and hid the cache-contention
# regression this ratio exists to catch.
SWEEP_BENCHTIME=${SWEEP_BENCHTIME:-20x}
raw=$(GOMAXPROCS="$BENCH_GOMAXPROCS" go test -bench 'SweepSerialVsParallel|KFoldParallel' -benchtime "$SWEEP_BENCHTIME" -run '^$' .)
echo "$raw"

# Per-task dispatch overhead of the engine itself: per-index ForEach vs the
# chunk-claiming ForEachChunked on 64Ki trivial tasks. The legacy_foreach
# baseline (per-index dispatch before chunked claiming landed) was measured
# once at benchtime 3x on the reference runner and stays fixed.
dispraw=$(go test -bench 'Dispatch' -benchtime "$BENCHTIME" -run '^$' ./internal/parallel)
echo "$dispraw"

{ echo "$raw"; echo "$dispraw"; } | awk -v out="$OUT" '
/^BenchmarkSweepSerialVsParallel\/serial/   { sweep_s = $3 }
/^BenchmarkSweepSerialVsParallel\/parallel/ { sweep_p = $3 }
/^BenchmarkKFoldParallel\/serial/           { kfold_s = $3 }
/^BenchmarkKFoldParallel\/parallel/         { kfold_p = $3 }
/^BenchmarkDispatch\/foreach-chunked/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "ns/task") chunk_ns = $i
    next
}
/^BenchmarkDispatch\/foreach/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "ns/task") each_ns = $i
}
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (sweep_s == "" || sweep_p == "" || kfold_s == "" || kfold_p == "" || each_ns == "" || chunk_ns == "") {
        print "bench.sh: missing benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    legacy_each_ns = 20.14
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"gomaxprocs\": %d,\n", ENVIRON["BENCH_GOMAXPROCS"] >> out
    printf "  \"sweep\": {\"serial_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.3f},\n", sweep_s, sweep_p, sweep_s / sweep_p >> out
    printf "  \"kfold\": {\"serial_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.3f},\n", kfold_s, kfold_p, kfold_s / kfold_p >> out
    printf "  \"dispatch\": {\"foreach_ns_task\": %s, \"chunked_ns_task\": %s, \"legacy_foreach_ns_task\": %.2f, \"chunked_vs_foreach\": %.3f}\n", \
        each_ns, chunk_ns, legacy_each_ns, each_ns / chunk_ns >> out
    printf "}\n" >> out
}'

echo "wrote $OUT"

# ML training engine: tree fit, the acceptance-gate forest fit (n=1000, d=16,
# 100 trees), block prediction, and the Lasso/SVR solver fits on their bench
# shapes. The legacy_* fields below were measured once from the pre-refactor
# engines — per-node reflection sort.Slice for the trees, residual-update
# coordinate descent for the Lasso, the [][]float64-kernel eager-sweep dual
# solver for the SVR — at benchtime 3x on the reference runner (Intel Xeon @
# 2.10GHz), and stay fixed so every rerun reports the speedup of the current
# engines against those baselines.
mlraw=$(go test -bench 'TreeFit|ForestFitLarge|ForestPredictBatch|LassoFit|SVRFit' -benchmem -benchtime "$BENCHTIME" -run '^$' ./internal/ml)
echo "$mlraw"

echo "$mlraw" | awk -v out="$ML_OUT" '
/^BenchmarkTreeFit[-\t ]/            { tree_ns = $3; tree_allocs = $7 }
/^BenchmarkForestFitLarge[-\t ]/     { forest_ns = $3; forest_allocs = $7 }
/^BenchmarkForestPredictBatch[-\t ]/ { batch_ns = $3 }
/^BenchmarkLassoFit[-\t ]/           { lasso_ns = $3 }
/^BenchmarkLassoFitWide[-\t ]/       { lassow_ns = $3 }
/^BenchmarkSVRFit[-\t ]/             { svr_ns = $3 }
/^BenchmarkSVRFitLarge[-\t ]/        { svrl_ns = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (tree_ns == "" || forest_ns == "" || batch_ns == "" || lasso_ns == "" || lassow_ns == "" || svr_ns == "" || svrl_ns == "") {
        print "bench.sh: missing ML benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    legacy_tree_ns = 16737282; legacy_tree_allocs = 48940
    legacy_forest_ns = 1545137444; legacy_forest_allocs = 2634758
    legacy_batch_ns = 21879380
    legacy_lasso_ns = 202811; legacy_lassow_ns = 659569
    legacy_svr_ns = 14887819; legacy_svrl_ns = 63604049
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"legacy_cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz\",\n" >> out
    printf "  \"tree_fit\": {\"ns_op\": %s, \"allocs_op\": %s, \"legacy_ns_op\": %d, \"legacy_allocs_op\": %d, \"speedup\": %.3f, \"alloc_ratio\": %.3f},\n", \
        tree_ns, tree_allocs, legacy_tree_ns, legacy_tree_allocs, legacy_tree_ns / tree_ns, legacy_tree_allocs / tree_allocs >> out
    printf "  \"forest_fit_large\": {\"ns_op\": %s, \"allocs_op\": %s, \"legacy_ns_op\": %d, \"legacy_allocs_op\": %d, \"speedup\": %.3f, \"alloc_ratio\": %.3f},\n", \
        forest_ns, forest_allocs, legacy_forest_ns, legacy_forest_allocs, legacy_forest_ns / forest_ns, legacy_forest_allocs / forest_allocs >> out
    printf "  \"forest_predict_batch\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f},\n", \
        batch_ns, legacy_batch_ns, legacy_batch_ns / batch_ns >> out
    printf "  \"lasso_fit\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f},\n", \
        lasso_ns, legacy_lasso_ns, legacy_lasso_ns / lasso_ns >> out
    printf "  \"lasso_fit_wide\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f},\n", \
        lassow_ns, legacy_lassow_ns, legacy_lassow_ns / lassow_ns >> out
    printf "  \"svr_fit\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f},\n", \
        svr_ns, legacy_svr_ns, legacy_svr_ns / svr_ns >> out
    printf "  \"svr_fit_large\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f}\n", \
        svrl_ns, legacy_svrl_ns, legacy_svrl_ns / svrl_ns >> out
    printf "}\n" >> out
}'

echo "wrote $ML_OUT"

# Deadline-aware scheduler: end-to-end campaign throughput (admitted jobs per
# second of wall time over a 96-job stream on a 4-device cluster) and the
# per-dispatch frequency-decision latency.
schedraw=$(go test -bench 'ScheduleStream|Decide' -benchtime "$BENCHTIME" -run '^$' ./internal/sched)
echo "$schedraw"

echo "$schedraw" | awk -v out="$SCHED_OUT" '
/^BenchmarkScheduleStream[-\t ]/ {
    for (i = 1; i < NF; i++) {
        if ($(i+1) == "ns/op") run_ns = $i
        if ($(i+1) == "jobs/s") jobs_s = $i
    }
}
/^BenchmarkDecide[-\t ]/ { decide_ns = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (run_ns == "" || jobs_s == "" || decide_ns == "") {
        print "bench.sh: missing scheduler benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"schedule_stream\": {\"ns_op\": %s, \"admitted_jobs_per_s\": %s},\n", run_ns, jobs_s >> out
    printf "  \"decide\": {\"ns_op\": %s}\n", decide_ns >> out
    printf "}\n" >> out
}'

echo "wrote $SCHED_OUT"

# Cronos MHD solver: the per-step cost of the 13-point stencil at the two
# bracketing problem sizes, serial and slab-parallel. The legacy_* baselines
# were measured once from the pre-tiling solver (plane-at-a-time sweeps over
# AoS state) at benchtime 3x on the reference runner and stay fixed, so every
# rerun reports the speedup of the pencil-tiled SoA engine against them.
cronraw=$(go test -bench 'SolverStep' -benchtime "$BENCHTIME" -run '^$' ./internal/cronos)
echo "$cronraw"

echo "$cronraw" | awk -v out="$CRONOS_OUT" '
/^BenchmarkSolverStepSmallSerial[-\t ]/    { ss_ns = $3 }
/^BenchmarkSolverStepSmallParallel[-\t ]/  { sp_ns = $3 }
/^BenchmarkSolverStepMediumSerial[-\t ]/   { ms_ns = $3 }
/^BenchmarkSolverStepMediumParallel[-\t ]/ { mp_ns = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (ss_ns == "" || sp_ns == "" || ms_ns == "" || mp_ns == "") {
        print "bench.sh: missing cronos benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    legacy_ss_ns = 95690065; legacy_sp_ns = 104902990
    legacy_ms_ns = 815726584; legacy_mp_ns = 832985582
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"legacy_cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz\",\n" >> out
    printf "  \"step_small_serial\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f},\n", ss_ns, legacy_ss_ns, legacy_ss_ns / ss_ns >> out
    printf "  \"step_small_parallel\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f},\n", sp_ns, legacy_sp_ns, legacy_sp_ns / sp_ns >> out
    printf "  \"step_medium_serial\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f},\n", ms_ns, legacy_ms_ns, legacy_ms_ns / ms_ns >> out
    printf "  \"step_medium_parallel\": {\"ns_op\": %s, \"legacy_ns_op\": %d, \"speedup\": %.3f}\n", mp_ns, legacy_mp_ns, legacy_mp_ns / mp_ns >> out
    printf "}\n" >> out
}'

echo "wrote $CRONOS_OUT"

# Frequency-advisor service: end-to-end campaign throughput (answered
# requests per second of wall time over the two-shard test load with a
# hot-reload mid-run) and the per-query latency of an uncached advisory
# lookup (registry lookup + batched curve prediction + deadline decision).
serveraw=$(go test -bench 'ServeCampaign|Advise' -benchtime "$BENCHTIME" -run '^$' ./internal/serve)
echo "$serveraw"

echo "$serveraw" | awk -v out="$SERVE_OUT" '
/^BenchmarkServeCampaign[-\t ]/ {
    for (i = 1; i < NF; i++) {
        if ($(i+1) == "ns/op") run_ns = $i
        if ($(i+1) == "req/s") req_s = $i
    }
}
/^BenchmarkAdvise[-\t ]/ { advise_ns = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (run_ns == "" || req_s == "" || advise_ns == "") {
        print "bench.sh: missing serving benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"serve_campaign\": {\"ns_op\": %s, \"answered_req_per_s\": %s},\n", run_ns, req_s >> out
    printf "  \"advise\": {\"ns_op\": %s}\n", advise_ns >> out
    printf "}\n" >> out
}'

echo "wrote $SERVE_OUT"

# Gpusim analytic hot path: single-point AnalyzeAt in its three shapes
# (steady-state cache hit, pure uncached evaluation with the cache detached,
# GOMAXPROCS-way contention on one fork-shared cache) plus the batched
# AnalyzeCurve per-point cost. The legacy_* baselines were measured once from
# the pre-rewrite engine — RWMutex map cache hashing the full kernels.Profile
# struct per lookup, uncompiled per-call evaluation — at benchtime 3x on the
# reference runner and stay fixed. The sweep rows repeat the serial/parallel
# arm from above so the end-to-end sweep speedup sits next to the kernel-level
# numbers it depends on; the legacy parallel sweep ran at 0.966x serial.
#
# These are nanosecond-scale micro-benchmarks, so they average over wall time
# (default 1s per arm) instead of the iteration-count BENCHTIME the macro
# benchmarks use — at 3 iterations the timer noise would swamp the signal.
GPUSIM_BENCHTIME=${GPUSIM_BENCHTIME:-1s}
gpuraw=$(GOMAXPROCS="$BENCH_GOMAXPROCS" go test -bench 'AnalyzeAt|AnalyzeCurve' -benchtime "$GPUSIM_BENCHTIME" -run '^$' ./internal/gpusim)
echo "$gpuraw"

{ echo "$raw"; echo "$gpuraw"; } | awk -v out="$GPUSIM_OUT" '
/^BenchmarkAnalyzeAt\/cached/     { cached_ns = $3 }
/^BenchmarkAnalyzeAt\/uncached/   { uncached_ns = $3 }
/^BenchmarkAnalyzeAt\/contention/ { cont_ns = $3 }
/^BenchmarkAnalyzeCurve\/cached/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "ns/point") curve_hit_ns = $i
    next
}
/^BenchmarkAnalyzeCurve\/uncached/ {
    for (i = 1; i < NF; i++) if ($(i+1) == "ns/point") curve_miss_ns = $i
}
/^BenchmarkSweepSerialVsParallel\/serial/   { sweep_s = $3 }
/^BenchmarkSweepSerialVsParallel\/parallel/ { sweep_p = $3 }
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
END {
    if (cached_ns == "" || uncached_ns == "" || cont_ns == "" || curve_hit_ns == "" || curve_miss_ns == "" || sweep_s == "" || sweep_p == "") {
        print "bench.sh: missing gpusim benchmark rows in go test output" > "/dev/stderr"
        exit 1
    }
    legacy_cached_ns = 148.4; legacy_uncached_ns = 172.0; legacy_cont_ns = 156.2
    legacy_sweep_speedup = 0.966
    printf "{\n" > out
    printf "  \"cpu\": \"%s\",\n", cpu >> out
    printf "  \"legacy_cpu\": \"Intel(R) Xeon(R) Processor @ 2.10GHz\",\n" >> out
    printf "  \"gomaxprocs\": %d,\n", ENVIRON["BENCH_GOMAXPROCS"] >> out
    printf "  \"analyze_at_cached\": {\"ns_op\": %s, \"legacy_ns_op\": %.1f, \"speedup\": %.3f},\n", \
        cached_ns, legacy_cached_ns, legacy_cached_ns / cached_ns >> out
    printf "  \"analyze_at_uncached\": {\"ns_op\": %s, \"legacy_ns_op\": %.1f, \"speedup\": %.3f},\n", \
        uncached_ns, legacy_uncached_ns, legacy_uncached_ns / uncached_ns >> out
    printf "  \"analyze_at_contention\": {\"ns_op\": %s, \"legacy_ns_op\": %.1f, \"speedup\": %.3f},\n", \
        cont_ns, legacy_cont_ns, legacy_cont_ns / cont_ns >> out
    printf "  \"analyze_curve\": {\"cached_ns_point\": %s, \"uncached_ns_point\": %s},\n", curve_hit_ns, curve_miss_ns >> out
    printf "  \"sweep\": {\"serial_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.3f, \"legacy_speedup\": %.3f}\n", \
        sweep_s, sweep_p, sweep_s / sweep_p, legacy_sweep_speedup >> out
    printf "}\n" >> out
}'

echo "wrote $GPUSIM_OUT"
