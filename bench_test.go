package dsenergy

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment end to end
// (measurement sweep, model training where applicable) and reports the
// figure's headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result set. The benchmarks run the reduced-fidelity
// QuickConfig; `go run ./cmd/...` regenerates the full-fidelity versions.

import (
	"testing"

	"dsenergy/internal/experiments"
	"dsenergy/internal/ml"
	"dsenergy/internal/xrand"
)

func benchCfg() experiments.Config { return experiments.QuickConfig() }

// benchFigure runs a characterization-figure generator once per iteration
// and reports the Pareto-front sizes of its panels.
func benchFigure(b *testing.B, gen func() (experiments.Figure, error)) {
	b.Helper()
	var fig experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = gen()
		if err != nil {
			b.Fatal(err)
		}
	}
	var points, front int
	for _, s := range fig.Series {
		points += len(s.Points)
		front += len(s.ParetoFreqs)
	}
	b.ReportMetric(float64(points), "sweep-points")
	b.ReportMetric(float64(front), "pareto-points")
}

// BenchmarkFig01Characterization regenerates Figure 1 (LiGen and Cronos
// multi-objective characterization on the V100).
func BenchmarkFig01Characterization(b *testing.B) { benchFigure(b, benchCfg().Fig1) }

// BenchmarkFig02LiGenInputSizes regenerates Figure 2 (LiGen small vs large
// input Pareto analysis).
func BenchmarkFig02LiGenInputSizes(b *testing.B) { benchFigure(b, benchCfg().Fig2) }

// BenchmarkFig03CronosInputSizes regenerates Figure 3 (Cronos 20x8x8 vs
// 160x64x64).
func BenchmarkFig03CronosInputSizes(b *testing.B) { benchFigure(b, benchCfg().Fig3) }

// BenchmarkFig04CronosV100 regenerates Figure 4 (Cronos grid scaling, V100).
func BenchmarkFig04CronosV100(b *testing.B) { benchFigure(b, benchCfg().Fig4) }

// BenchmarkFig05CronosMI100 regenerates Figure 5 (Cronos grid scaling,
// MI100 with auto performance level baseline).
func BenchmarkFig05CronosMI100(b *testing.B) { benchFigure(b, benchCfg().Fig5) }

// BenchmarkFig06LiGenFragmentsV100 regenerates Figure 6 (raw energy/time,
// fragment scaling at fixed atoms, V100).
func BenchmarkFig06LiGenFragmentsV100(b *testing.B) { benchFigure(b, benchCfg().Fig6) }

// BenchmarkFig07LiGenFragmentsMI100 regenerates Figure 7 (same on MI100).
func BenchmarkFig07LiGenFragmentsMI100(b *testing.B) { benchFigure(b, benchCfg().Fig7) }

// BenchmarkFig08LiGenAtomsV100 regenerates Figure 8 (atom scaling at fixed
// fragments, V100).
func BenchmarkFig08LiGenAtomsV100(b *testing.B) { benchFigure(b, benchCfg().Fig8) }

// BenchmarkFig09LiGenAtomsMI100 regenerates Figure 9 (same on MI100).
func BenchmarkFig09LiGenAtomsMI100(b *testing.B) { benchFigure(b, benchCfg().Fig9) }

// BenchmarkFig10LiGenBothDevices regenerates Figure 10 (LiGen small vs large
// inputs on V100 and MI100).
func BenchmarkFig10LiGenBothDevices(b *testing.B) { benchFigure(b, benchCfg().Fig10) }

// BenchmarkTable1StaticFeatures exercises Table 1: static-feature extraction
// over the full micro-benchmark suite.
func BenchmarkTable1StaticFeatures(b *testing.B) {
	cfg := benchCfg()
	p, err := cfg.Platform()
	if err != nil {
		b.Fatal(err)
	}
	q := p.Queues()[0]
	for i := 0; i < b.N; i++ {
		gp, err := cfg.TrainGP(q)
		if err != nil {
			b.Fatal(err)
		}
		if gp.BaselineFreqMHz != q.BaselineFreqMHz() {
			b.Fatal("baseline mismatch")
		}
	}
}

// BenchmarkTable2DomainFeatures exercises Table 2: building both
// domain-specific datasets from their feature schemas.
func BenchmarkTable2DomainFeatures(b *testing.B) {
	cfg := benchCfg()
	p, err := cfg.Platform()
	if err != nil {
		b.Fatal(err)
	}
	q := p.Queues()[0]
	var samples int
	for i := 0; i < b.N; i++ {
		cds, _, err := cfg.BuildCronosDataset(q)
		if err != nil {
			b.Fatal(err)
		}
		lds, _, err := cfg.BuildLiGenDataset(q)
		if err != nil {
			b.Fatal(err)
		}
		samples = len(cds.Samples) + len(lds.Samples)
	}
	b.ReportMetric(float64(samples), "samples")
}

// BenchmarkFig13ModelAccuracy regenerates Figure 13 (domain-specific vs
// general-purpose MAPE, both applications) and reports the paper's headline
// GP/DS error ratios.
func BenchmarkFig13ModelAccuracy(b *testing.B) {
	cfg := benchCfg()
	var r experiments.Fig13Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = cfg.Fig13()
		if err != nil {
			b.Fatal(err)
		}
	}
	sp, en := r.MeanRatios()
	b.ReportMetric(sp, "speedup-ratio")
	b.ReportMetric(en, "energy-ratio")
}

// BenchmarkFig14ParetoPrediction regenerates Figure 14 (predicted Pareto
// sets) and reports exact-match counts for both models.
func BenchmarkFig14ParetoPrediction(b *testing.B) {
	cfg := benchCfg()
	var panels []experiments.Fig14Panel
	var err error
	for i := 0; i < b.N; i++ {
		panels, err = cfg.Fig14()
		if err != nil {
			b.Fatal(err)
		}
	}
	var dsExact, gpExact int
	for _, p := range panels {
		dsExact += p.DS.ExactMatches
		gpExact += p.GP.ExactMatches
	}
	b.ReportMetric(float64(dsExact), "ds-exact")
	b.ReportMetric(float64(gpExact), "gp-exact")
}

// BenchmarkRegressorComparison regenerates §5.2.1's algorithm selection
// (Linear, Lasso, SVR-RBF, Random Forest on both applications).
func BenchmarkRegressorComparison(b *testing.B) {
	cfg := benchCfg()
	var cmp []experiments.AlgorithmComparison
	var err error
	for i := 0; i < b.N; i++ {
		cmp, err = cfg.CompareRegressors()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range cmp {
		for _, s := range c.Scores {
			if s.Spec.Algorithm == "forest" {
				b.ReportMetric(s.MeanSpeedupMAPE, c.App+"-forest-mape")
			}
		}
	}
}

// BenchmarkAblationRoofline quantifies design choice 1 of DESIGN.md §5:
// roofline vs compute-only execution model.
func BenchmarkAblationRoofline(b *testing.B) {
	cfg := benchCfg()
	var r experiments.AblationRooflineResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = cfg.AblationRoofline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RooflineSaving, "roofline-saving")
	b.ReportMetric(r.ComputeOnlySaving, "compute-only-saving")
}

// BenchmarkAblationInputFeatures quantifies design choice 3: input features
// vs static-only features in the domain-specific pipeline.
func BenchmarkAblationInputFeatures(b *testing.B) {
	cfg := benchCfg()
	var r experiments.AblationFeaturesResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = cfg.AblationFeatures()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.WithInputsMeanMAPE, "with-inputs-mape")
	b.ReportMetric(r.StaticOnlyMeanMAPE, "static-only-mape")
}

// BenchmarkAblationNoiseReps quantifies design choice 4: one vs five
// measurement repetitions.
func BenchmarkAblationNoiseReps(b *testing.B) {
	cfg := benchCfg()
	var r experiments.AblationNoiseResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = cfg.AblationNoise()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Reps1MeanMAPE, "reps1-mape")
	b.ReportMetric(r.Reps5MeanMAPE, "reps5-mape")
}

// BenchmarkAblationBatching quantifies the LiGen launch-batching choice.
func BenchmarkAblationBatching(b *testing.B) {
	cfg := benchCfg()
	var r experiments.AblationBatchingResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = cfg.AblationBatching()
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(r.Savings) > 0 {
		b.ReportMetric(r.Savings[len(r.Savings)-1], "max-batch-saving")
	}
}

// BenchmarkFutureWorkPerKernel measures the paper's §7 future work: energy
// saved by per-kernel frequency scaling on the large Cronos grid.
func BenchmarkFutureWorkPerKernel(b *testing.B) {
	cfg := benchCfg()
	var r experiments.PerKernelResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = cfg.FutureWorkPerKernel()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Outcome.EnergySaving(), "energy-saving")
	b.ReportMetric(r.Outcome.Speedup(), "speedup")
}

// BenchmarkStrongScaling measures distributed strong scaling of both
// applications on V100 clusters (the Celerity/multi-node context).
func BenchmarkStrongScaling(b *testing.B) {
	cfg := benchCfg()
	var lr, cr []experiments.ScalingRow
	var err error
	for i := 0; i < b.N; i++ {
		lr, cr, err = cfg.StrongScaling([]int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lr[len(lr)-1].Efficiency, "ligen-eff-8dev")
	b.ReportMetric(cr[len(cr)-1].Efficiency, "cronos-eff-8dev")
}

// BenchmarkSweepSerialVsParallel compares the serial measurement campaign
// (Workers=1, the reference path) against the deterministic parallel engine
// (Workers=0, GOMAXPROCS workers) building the full QuickConfig LiGen
// dataset. Both arms produce byte-identical datasets — the determinism tests
// pin that — so the ns/op ratio is the engine's pure speedup.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	for _, arm := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := benchCfg()
			cfg.Jobs = arm.workers
			var samples int
			for i := 0; i < b.N; i++ {
				p, err := cfg.Platform()
				if err != nil {
					b.Fatal(err)
				}
				ds, _, err := cfg.BuildLiGenDataset(p.Queues()[0])
				if err != nil {
					b.Fatal(err)
				}
				samples = len(ds.Samples)
			}
			b.ReportMetric(float64(samples), "samples")
		})
	}
}

// BenchmarkKFoldParallel compares serial k-fold cross-validation against the
// parallel fold fan-out on a synthetic regression problem sized like the
// paper's datasets.
func BenchmarkKFoldParallel(b *testing.B) {
	const n, d, k = 600, 6, 5
	rng := xrand.New(42)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		var s float64
		for j := range row {
			row[j] = rng.Float64()
			s += float64(j+1) * row[j]
		}
		X[i] = row
		y[i] = 1 + s + 0.01*rng.Norm()
	}
	spec := ml.Spec{Algorithm: "forest", Params: map[string]float64{"n_estimators": 30}}
	for _, arm := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(arm.name, func(b *testing.B) {
			var mape float64
			var err error
			for i := 0; i < b.N; i++ {
				mape, err = ml.KFoldMAPEParallel(spec, X, y, k, 7, arm.workers)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mape, "mape")
		})
	}
}

// BenchmarkTunerComparison measures the deployment trade-off: model-driven
// frequency selection (zero application executions) vs online search vs the
// oracle, on the held-out large Cronos grid.
func BenchmarkTunerComparison(b *testing.B) {
	cfg := benchCfg()
	var r experiments.TuningComparison
	var err error
	for i := 0; i < b.N; i++ {
		r, err = cfg.CompareTuners()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ModelEnergy-r.OracleEnergy, "model-regret")
	b.ReportMetric(float64(r.OnlineMeasurements), "online-runs")
}
