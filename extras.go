package dsenergy

import (
	"io"

	"dsenergy/internal/core"
	"dsenergy/internal/cronos"
	"dsenergy/internal/ligen"
	"dsenergy/internal/synergy"
	"dsenergy/internal/xrand"
)

// Observability and persistence helpers exposed through the facade.

type (
	// EnergyEvent is one per-kernel energy attribution record.
	EnergyEvent = synergy.Event
	// TracePoint is one sample of a reconstructed power trace.
	TracePoint = synergy.TracePoint
)

// PowerTrace reconstructs a sampled power-over-time series from a queue's
// per-kernel energy events (sample period dt seconds).
func PowerTrace(events []EnergyEvent, dt float64) ([]TracePoint, error) {
	return synergy.PowerTrace(events, dt)
}

// ReadDatasetCSV loads a measurement dataset written with Dataset.WriteCSV,
// so expensive sweeps are acquired once and re-used across modeling runs.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) { return core.ReadCSV(r) }

// LoadModel reads a trained model written with Model.Save, so a deployed
// frequency tuner does not refit from raw measurements.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// GenLigandBranched synthesizes a ligand with side chains: a rotatable
// backbone plus branch atoms, for structurally richer screening libraries.
func GenLigandBranched(seed uint64, name string, atoms, fragments int, branchFrac float64) (*Ligand, error) {
	return ligen.GenLigandBranched(xrand.New(seed), name, atoms, fragments, branchFrac)
}

// WriteLigand serializes a ligand in the library's line-oriented exchange
// format; ReadLigand parses it back.
func WriteLigand(w io.Writer, l *Ligand) error { return ligen.WriteLigand(w, l) }

// ReadLigand parses a ligand serialized by WriteLigand.
func ReadLigand(r io.Reader) (*Ligand, error) { return ligen.ReadLigand(r) }

// WritePocket serializes a receptor grid; ReadPocket restores it, so a
// target protein's maps are computed once per campaign.
func WritePocket(w io.Writer, p *Pocket) error { return ligen.WritePocket(w, p) }

// ReadPocket restores a pocket written by WritePocket.
func ReadPocket(r io.Reader) (*Pocket, error) { return ligen.ReadPocket(r) }

// ReadMHDCheckpoint restores a solver from a checkpoint written with
// (*MHDSolver).WriteCheckpoint; the run continues bit-for-bit.
func ReadMHDCheckpoint(r io.Reader, workers int) (*MHDSolver, error) {
	return cronos.ReadCheckpoint(r, workers)
}
