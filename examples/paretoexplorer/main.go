// Pareto explorer: sweep both applications across both devices and print
// every Pareto front, reproducing the exploration a user performs with the
// paper's characterization tooling (Figures 1-5, 10) before committing to a
// frequency configuration.
package main

import (
	"fmt"
	"log"

	"dsenergy"
)

func main() {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		log.Fatal(err)
	}

	workloads := []struct {
		name string
		w    dsenergy.Workload
	}{}
	for _, in := range []dsenergy.LiGenInput{
		{Ligands: 256, Atoms: 31, Fragments: 4},
		{Ligands: 10000, Atoms: 89, Fragments: 20},
	} {
		w, err := dsenergy.NewLiGenWorkload(in)
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, struct {
			name string
			w    dsenergy.Workload
		}{"LiGen " + in.String(), w})
	}
	for _, g := range [][3]int{{10, 4, 4}, {160, 64, 64}} {
		w, err := dsenergy.NewCronosWorkload(g[0], g[1], g[2], 10)
		if err != nil {
			log.Fatal(err)
		}
		workloads = append(workloads, struct {
			name string
			w    dsenergy.Workload
		}{fmt.Sprintf("Cronos %dx%dx%d", g[0], g[1], g[2]), w})
	}

	for _, q := range tb.Queues() {
		spec := q.Spec()
		band := spec.FreqsAbove(0.4)
		var sweep []int
		for i := 0; i < len(band); i += 6 {
			sweep = append(sweep, band[i])
		}
		sweep = append(sweep, q.BaselineFreqMHz(), spec.FMaxMHz())
		sweep = dedup(sweep)

		fmt.Printf("==== %s (baseline %d MHz) ====\n", spec.Name, q.BaselineFreqMHz())
		for _, wl := range workloads {
			ms, err := dsenergy.Sweep(q, wl.w, sweep, 3)
			if err != nil {
				log.Fatal(err)
			}
			var ref dsenergy.Measurement
			for _, m := range ms {
				if m.FreqMHz == q.BaselineFreqMHz() {
					ref = m
				}
			}
			var pts []dsenergy.ParetoPoint
			for _, m := range ms {
				pts = append(pts, dsenergy.ParetoPoint{
					FreqMHz:    m.FreqMHz,
					Speedup:    ref.TimeS / m.TimeS,
					NormEnergy: m.EnergyJ / ref.EnergyJ,
				})
			}
			front := dsenergy.ParetoFront(pts)
			fmt.Printf("-- %s: %d Pareto-optimal of %d swept --\n", wl.name, len(front), len(pts))
			for _, p := range front {
				fmt.Printf("   %5d MHz  speedup %6.3f  normE %6.3f\n", p.FreqMHz, p.Speedup, p.NormEnergy)
			}
		}
		fmt.Println()
	}
}

func dedup(fs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range fs {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
