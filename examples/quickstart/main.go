// Quickstart: open the simulated testbed, run a LiGen workload at three core
// frequencies, and print the energy/performance trade-off — the smallest
// possible end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"dsenergy"
)

func main() {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		log.Fatal(err)
	}
	v100 := tb.Queues()[0]
	fmt.Printf("device: %s, %d selectable core frequencies (%d-%d MHz), baseline %d MHz\n",
		v100.Spec().Name, len(v100.SupportedFreqsMHz()),
		v100.Spec().FMinMHz(), v100.Spec().FMaxMHz(), v100.BaselineFreqMHz())

	w, err := dsenergy.NewLiGenWorkload(dsenergy.LiGenInput{Ligands: 1024, Atoms: 63, Fragments: 8})
	if err != nil {
		log.Fatal(err)
	}

	base := v100.BaselineFreqMHz()
	low := v100.Spec().NearestFreqMHz(base * 3 / 4)
	high := v100.Spec().FMaxMHz()

	fmt.Printf("\n%-14s %12s %12s %10s\n", "frequency", "time (s)", "energy (J)", "avg W")
	var ref dsenergy.Measurement
	for i, f := range []int{low, base, high} {
		m, err := dsenergy.MeasureAt(v100, w, f, 5)
		if err != nil {
			log.Fatal(err)
		}
		if i == 1 {
			ref = m
		}
		fmt.Printf("%9d MHz %12.5f %12.3f %10.1f\n", m.FreqMHz, m.TimeS, m.EnergyJ, m.EnergyJ/m.TimeS)
	}

	mLow, _ := dsenergy.MeasureAt(v100, w, low, 5)
	mHigh, _ := dsenergy.MeasureAt(v100, w, high, 5)
	fmt.Printf("\ndown-clocking to %d MHz: %+.1f%% time, %+.1f%% energy\n",
		low, (mLow.TimeS/ref.TimeS-1)*100, (mLow.EnergyJ/ref.EnergyJ-1)*100)
	fmt.Printf("up-clocking to %d MHz:  %+.1f%% time, %+.1f%% energy\n",
		high, (mHigh.TimeS/ref.TimeS-1)*100, (mHigh.EnergyJ/ref.EnergyJ-1)*100)
}
