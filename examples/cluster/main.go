// Cluster example: run the EXSCALATE-style scenario — a virtual-screening
// campaign sharded across a multi-GPU cluster, and a distributed Cronos
// simulation with halo exchange — and show how cluster-wide frequency tuning
// changes the energy bill.
package main

import (
	"fmt"
	"log"

	"dsenergy"
)

func main() {
	const devices = 8
	cl, err := dsenergy.NewCluster(42, dsenergy.V100Spec(), devices, dsenergy.DefaultInterconnect())
	if err != nil {
		log.Fatal(err)
	}
	single, err := dsenergy.NewCluster(42, dsenergy.V100Spec(), 1, dsenergy.DefaultInterconnect())
	if err != nil {
		log.Fatal(err)
	}

	// --- LiGen campaign: embarrassingly parallel ---
	in := dsenergy.LiGenInput{Ligands: 65536, Atoms: 63, Fragments: 8}
	r1, err := single.ScreenLiGen(in)
	if err != nil {
		log.Fatal(err)
	}
	rn, err := cl.ScreenLiGen(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LiGen %d ligands: 1 device %.2fs, %d devices %.2fs (efficiency %.0f%%)\n",
		in.Ligands, r1.TimeS, devices, rn.TimeS, rn.Efficiency(r1.TimeS, devices)*100)

	// --- Cronos simulation: z-slab decomposition with halo exchange ---
	c1, err := single.RunCronos(160, 64, 64, 50)
	if err != nil {
		log.Fatal(err)
	}
	cn, err := cl.RunCronos(160, 64, 64, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cronos 160x64x64: 1 device %.3fs, %d devices %.3fs (efficiency %.0f%%, comm %.0f%%)\n",
		c1.TimeS, devices, cn.TimeS, cn.Efficiency(c1.TimeS, devices)*100,
		cn.CommTimeS/cn.TimeS*100)

	// --- Cluster-wide frequency tuning ---
	// The stencil is memory-bound: down-clock the whole cluster.
	spec := cl.Queues()[0].Spec()
	low := spec.NearestFreqMHz(spec.BaselineFreqMHz() * 2 / 3)
	if err := cl.SetCoreFreqMHz(low); err != nil {
		log.Fatal(err)
	}
	cnLow, err := cl.RunCronos(160, 64, 64, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster at %d MHz: %.3fs (%+.1f%% time), %.0fJ vs %.0fJ (%.0f%% energy saved)\n",
		low, cnLow.TimeS, (cnLow.TimeS/cn.TimeS-1)*100,
		cnLow.EnergyJ, cn.EnergyJ, (1-cnLow.EnergyJ/cn.EnergyJ)*100)

	// --- Fault injection: the same campaign under failure conditions ---
	// One device dies mid-campaign, another spends a stretch thermally
	// throttled, and 1% of kernels fault transiently. The cluster retries,
	// requeues the dead device's shards, checkpoints and restarts Cronos —
	// and reports what surviving cost.
	faulty, err := dsenergy.NewCluster(42, dsenergy.V100Spec(), devices, dsenergy.DefaultInterconnect())
	if err != nil {
		log.Fatal(err)
	}
	plan := dsenergy.FaultPlan{
		Seed:          7,
		TransientProb: 0.01,
		Failures:      []dsenergy.DeviceFailure{{Device: 3, AfterSubmits: 8}},
		Throttles:     []dsenergy.ThermalThrottle{{Device: 1, FromSubmit: 5, ToSubmit: 30, CapMHz: 1005}},
	}
	if err := faulty.SetFaultPlan(plan, dsenergy.DefaultResilienceConfig()); err != nil {
		log.Fatal(err)
	}
	rf, err := faulty.ScreenLiGen(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LiGen under faults: %.2fs (%+.1f%% vs clean), %d retries, %d failover, %d/%d devices, wasted %.0fJ\n",
		rf.TimeS, (rf.TimeS/rn.TimeS-1)*100, rf.Retries, rf.Failovers,
		rf.SurvivingDevices, devices, rf.WastedEnergyJ)
	// The dead device stays dead: the follow-up Cronos run starts degraded
	// on the 7 survivors and still checkpoints against further faults.
	cf, err := faulty.RunCronos(160, 64, 64, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Cronos under faults: %.3fs (%+.1f%% vs clean) on %d devices, checkpoint overhead %.3fs\n",
		cf.TimeS, (cf.TimeS/cn.TimeS-1)*100, cf.SurvivingDevices, cf.CheckpointTimeS)
}
