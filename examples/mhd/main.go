// MHD example: run a real magnetized blast-wave simulation with the Cronos
// solver (the science), then characterize the same simulation as a GPU
// workload across the frequency range and report its Pareto-optimal
// frequencies — the paper's Figure 4 scenario, as a user would apply it.
package main

import (
	"fmt"
	"log"
	"math"

	"dsenergy"
)

func main() {
	// --- Part 1: the science — a blast wave on the CPU -------------------
	s, err := dsenergy.NewMHDSolver(dsenergy.MHDConfig{
		NX: 32, NY: 32, NZ: 32, Boundary: dsenergy.MHDPeriodic,
	})
	if err != nil {
		log.Fatal(err)
	}
	dsenergy.InitMHDBlastWave(s.Grid, 0.1, 10, 0.15)
	mass0 := s.Grid.TotalMass()
	if err := s.Run(0.05, 50); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blast wave: %d steps to t=%.4f, dt=%.2e, mass drift %.2e (conserved)\n",
		s.StepsRun, s.Time, s.DT, s.Grid.TotalMass()-mass0)

	// Peak density tells us the shock has formed.
	var rhoMax float64
	for k := 0; k < 32; k++ {
		for j := 0; j < 32; j++ {
			for i := 0; i < 32; i++ {
				if r := s.Grid.At(0, i, j, k); r > rhoMax {
					rhoMax = r
				}
			}
		}
	}
	fmt.Printf("peak compression: rho_max = %.3f (ambient 1.0)\n\n", rhoMax)

	// --- Part 2: energy characterization of the production run -----------
	// The production simulation uses the paper's large grid.
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		log.Fatal(err)
	}
	v100 := tb.Queues()[0]
	w, err := dsenergy.NewCronosWorkload(160, 64, 64, 20)
	if err != nil {
		log.Fatal(err)
	}

	band := v100.Spec().FreqsAbove(0.4)
	var sweep []int
	for i := 0; i < len(band); i += 8 {
		sweep = append(sweep, band[i])
	}
	sweep = append(sweep, v100.BaselineFreqMHz(), v100.Spec().FMaxMHz())

	ms, err := dsenergy.Sweep(v100, w, sweep, 5)
	if err != nil {
		log.Fatal(err)
	}
	var ref dsenergy.Measurement
	for _, m := range ms {
		if m.FreqMHz == v100.BaselineFreqMHz() {
			ref = m
		}
	}

	var pts []dsenergy.ParetoPoint
	for _, m := range ms {
		pts = append(pts, dsenergy.ParetoPoint{
			FreqMHz:    m.FreqMHz,
			Speedup:    ref.TimeS / m.TimeS,
			NormEnergy: m.EnergyJ / ref.EnergyJ,
		})
	}
	front := dsenergy.ParetoFront(pts)
	fmt.Println("Pareto-optimal frequency configurations (160x64x64):")
	for _, p := range front {
		fmt.Printf("   %5d MHz  speedup %.3f  normalized energy %.3f\n",
			p.FreqMHz, p.Speedup, p.NormEnergy)
	}
	best := front[len(front)-1]
	fmt.Printf("\nmemory-bound stencil: down-clocking to %d MHz saves %.0f%% energy at %.1f%% slowdown\n",
		best.FreqMHz, (1-best.NormEnergy)*100, (1-best.Speedup)*100)

	// --- Part 3: a user-provided conservation law -------------------------
	// Cronos also solves user-supplied conservation laws; here the inviscid
	// Burgers equation steepens a smooth wave into a shock.
	bs, err := dsenergy.NewScalarSolver(dsenergy.BurgersLaw{}, 128, 1, 1, dsenergy.MHDPeriodic)
	if err != nil {
		log.Fatal(err)
	}
	bs.Init(func(x, _, _ float64) float64 { return 1 + 0.5*math.Sin(2*math.Pi*x) })
	if err := bs.Run(0.5, 0); err != nil {
		log.Fatal(err)
	}
	var maxGrad float64
	for i := 0; i < 127; i++ {
		if g := math.Abs(bs.At(i+1, 0, 0)-bs.At(i, 0, 0)) / bs.DX; g > maxGrad {
			maxGrad = g
		}
	}
	fmt.Printf("\nuser conservation law (Burgers): %d steps to t=%.2f, shock gradient %.0f\n",
		bs.StepsRun, bs.Time, maxGrad)
}
