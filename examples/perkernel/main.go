// Per-kernel frequency scaling example — the paper's future-work scenario
// (§7): train one domain-specific model per application kernel and let each
// kernel of a Cronos run execute at its own model-selected clock, instead of
// one frequency for the whole program.
package main

import (
	"fmt"
	"log"

	"dsenergy"
)

func main() {
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		log.Fatal(err)
	}
	v100 := tb.Queues()[0]

	// Training inputs: the Cronos grid ladder (the 160x64x64 target is
	// deliberately included only in the sweep, not special-cased).
	var wls []dsenergy.FeaturedWorkload
	for _, g := range [][3]int{{20, 8, 8}, {40, 16, 16}, {80, 32, 32}, {160, 64, 64}} {
		w, err := dsenergy.NewCronosWorkload(g[0], g[1], g[2], 8)
		if err != nil {
			log.Fatal(err)
		}
		wls = append(wls, dsenergy.FeaturedWorkload{
			Workload: w,
			Features: []float64{float64(g[0]), float64(g[1]), float64(g[2])},
		})
	}

	band := v100.Spec().FreqsAbove(0.45)
	var sweep []int
	for i := 0; i < len(band); i += 6 {
		sweep = append(sweep, band[i])
	}
	sweep = append(sweep, v100.BaselineFreqMHz(), v100.Spec().FMaxMHz())

	// Keep at most 1% predicted slowdown per kernel.
	policy := dsenergy.PerfConstraint(0.99)
	pk, err := dsenergy.TrainPerKernel(v100, dsenergy.CronosSchema(), wls,
		dsenergy.BuildConfig{Freqs: dedup(sweep), Reps: 5},
		dsenergy.RandomForestSpec(), policy, 1)
	if err != nil {
		log.Fatal(err)
	}

	input := []float64{160, 64, 64}
	plan, err := pk.PlanFor(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-kernel plan for Cronos 160x64x64 (policy %s, baseline %d MHz):\n",
		policy.Name(), v100.BaselineFreqMHz())
	for _, k := range pk.Kernels() {
		c := plan.Predicted[k]
		fmt.Printf("   %-16s -> %5d MHz (predicted speedup %.3f, energy %.3f)\n",
			k, plan.FreqByKernel[k], c.Speedup, c.NormEnergy)
	}

	w, _ := dsenergy.NewCronosWorkload(160, 64, 64, 8)
	out, err := pk.Execute(v100, w, plan, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured outcome vs whole-app baseline clock:\n")
	fmt.Printf("   time:   %.4fs -> %.4fs (speedup %.3f)\n",
		out.BaselineTimeS, out.TunedTimeS, out.Speedup())
	fmt.Printf("   energy: %.2fJ -> %.2fJ (saving %.1f%%)\n",
		out.BaselineEnergyJ, out.TunedEnergyJ, out.EnergySaving()*100)
}

func dedup(fs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range fs {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
