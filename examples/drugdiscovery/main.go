// Drug discovery example: run a real (CPU-reference) virtual-screening
// campaign with the LiGen docking engine, then use a domain-specific energy
// model to pick the core frequency that would run the campaign's GPU
// equivalent within an energy budget.
//
// This mirrors the paper's motivating scenario: the EXSCALATE platform
// screens enormous chemical libraries, so even a 10% energy saving at a few
// percent slowdown matters at campaign scale.
package main

import (
	"fmt"
	"log"

	"dsenergy"
)

func main() {
	// --- Part 1: the science — dock a small library on the CPU ----------
	pocket, err := dsenergy.GenPocket(7, 24, 12)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := dsenergy.GenLigandLibrary(11, 24, 31, 4)
	if err != nil {
		log.Fatal(err)
	}
	ranking, err := dsenergy.Screen(lib, pocket, dsenergy.FastDockParams(), 0, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top candidates (CPU reference docking):")
	for _, r := range ranking[:5] {
		fmt.Printf("   %-12s score %8.2f\n", r.Name, r.Score)
	}

	// --- Part 2: energy modeling for the full campaign ------------------
	// The production campaign screens 10000 ligands per batch on the GPU.
	tb, err := dsenergy.NewTestbed(42)
	if err != nil {
		log.Fatal(err)
	}
	v100 := tb.Queues()[0]

	// Training phase (Figure 11): measure a grid of campaign shapes.
	var wls []dsenergy.FeaturedWorkload
	for _, l := range []int{256, 1024, 4096, 10000} {
		for _, a := range []int{31, 63, 89} {
			w, err := dsenergy.NewLiGenWorkload(dsenergy.LiGenInput{Ligands: l, Atoms: a, Fragments: 8})
			if err != nil {
				log.Fatal(err)
			}
			wls = append(wls, dsenergy.FeaturedWorkload{
				Workload: w,
				Features: []float64{float64(l), 8, float64(a)},
			})
		}
	}
	sweep := everyNth(v100.Spec().FreqsAbove(0.4), 6)
	sweep = append(sweep, v100.BaselineFreqMHz())
	ds, err := dsenergy.BuildDataset(v100, dsenergy.LiGenSchema(), wls,
		dsenergy.BuildConfig{Freqs: dedupSorted(sweep), Reps: 5})
	if err != nil {
		log.Fatal(err)
	}
	model, err := dsenergy.TrainNormalized(ds, dsenergy.RandomForestSpec(), 1)
	if err != nil {
		log.Fatal(err)
	}

	// Prediction phase (Figure 12) for an UNSEEN campaign shape.
	campaign := []float64{8000, 8, 74} // ligands, fragments, atoms
	curves := model.PredictCurves(campaign, dedupSorted(sweep))
	fmt.Printf("\npredicted trade-off for unseen campaign %v:\n", campaign)

	// Pick the lowest-energy configuration that keeps >= 97%% performance.
	best := curves[len(curves)-1]
	found := false
	for _, c := range curves {
		if c.Speedup >= 0.97 && (!found || c.NormEnergy < best.NormEnergy) {
			best = c
			found = true
		}
	}
	fmt.Printf("   chosen frequency: %d MHz (predicted speedup %.3f, normalized energy %.3f)\n",
		best.FreqMHz, best.Speedup, best.NormEnergy)

	// Verify against the simulated ground truth.
	w, _ := dsenergy.NewLiGenWorkload(dsenergy.LiGenInput{Ligands: 8000, Atoms: 74, Fragments: 8})
	ref, _ := dsenergy.MeasureAt(v100, w, v100.BaselineFreqMHz(), 5)
	got, _ := dsenergy.MeasureAt(v100, w, best.FreqMHz, 5)
	fmt.Printf("   measured:        speedup %.3f, normalized energy %.3f\n",
		ref.TimeS/got.TimeS, got.EnergyJ/ref.EnergyJ)
}

func everyNth(fs []int, n int) []int {
	var out []int
	for i := 0; i < len(fs); i += n {
		out = append(out, fs[i])
	}
	if out[len(out)-1] != fs[len(fs)-1] {
		out = append(out, fs[len(fs)-1])
	}
	return out
}

func dedupSorted(fs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, f := range fs {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	// Insertion sort keeps the list ascending (it is nearly sorted).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
