// Package dsenergy is the public facade of the domain-specific energy
// modeling library, a reproduction of Carpentieri et al., "Domain-Specific
// Energy Modeling for Drug Discovery and Magnetohydrodynamics Applications"
// (SC-W 2023).
//
// The library spans the paper's whole stack:
//
//   - a DVFS-capable GPU simulator standing in for the NVIDIA V100 and AMD
//     MI100 testbed (gpusim);
//   - a portable energy-profiling and frequency-scaling layer in the role of
//     the SYnergy API (synergy);
//   - the two applications: the Cronos finite-volume MHD solver and the
//     LiGen molecular docking engine, each usable both as a real CPU
//     implementation and as a GPU workload (cronos, ligen);
//   - a from-scratch regression library (linear, Lasso, SVR-RBF, random
//     forest, cross-validation, grid search) in the role of scikit-learn
//     (ml);
//   - the general-purpose baseline model of Fan et al. trained on 106
//     micro-benchmarks (gpmodel, microbench);
//   - the paper's contribution: domain-specific energy/runtime models driven
//     by input characteristics (core), with Pareto-front tooling (pareto);
//   - a harness regenerating every table and figure of the evaluation
//     (experiments) — see also the testing.B benchmarks in bench_test.go;
//   - a deterministic observability layer — metrics, simulated-time traces
//     and wall-clock profiles that never perturb a result (obs).
//
// The facade re-exports the types a downstream user needs, so typical
// programs import only this package:
//
//	tb, _ := dsenergy.NewTestbed(42)
//	v100 := tb.Queues()[0]
//	w, _ := dsenergy.NewLiGenWorkload(dsenergy.LiGenInput{Ligands: 1024, Atoms: 63, Fragments: 8})
//	m, _ := dsenergy.MeasureAt(v100, w, 1297, 5)
//	fmt.Println(m.TimeS, m.EnergyJ)
package dsenergy

import (
	"dsenergy/internal/core"
	"dsenergy/internal/cronos"
	"dsenergy/internal/experiments"
	"dsenergy/internal/gpusim"
	"dsenergy/internal/ligen"
	"dsenergy/internal/ml"
	"dsenergy/internal/obs"
	"dsenergy/internal/pareto"
	"dsenergy/internal/synergy"
)

// Device simulation and the SYnergy-style runtime.
type (
	// DeviceSpec describes a simulated GPU (geometry, frequency table,
	// power model).
	DeviceSpec = gpusim.Spec
	// Platform owns the visible devices.
	Platform = synergy.Platform
	// Queue is an in-order execution queue bound to one device, with
	// frequency control and per-kernel energy attribution.
	Queue = synergy.Queue
	// Workload is anything measurable across a frequency sweep.
	Workload = synergy.Workload
	// Measurement is an averaged (frequency, time, energy) observation.
	Measurement = synergy.Measurement
)

// V100Spec returns the NVIDIA V100 preset used throughout the paper.
func V100Spec() DeviceSpec { return gpusim.V100Spec() }

// MI100Spec returns the AMD MI100 preset.
func MI100Spec() DeviceSpec { return gpusim.MI100Spec() }

// NewTestbed builds the paper's testbed: a platform exposing one V100 and
// one MI100, deterministically seeded.
func NewTestbed(seed uint64) (*Platform, error) {
	return synergy.NewPlatform(seed, gpusim.V100Spec(), gpusim.MI100Spec())
}

// NewPlatform builds a platform over an arbitrary device list.
func NewPlatform(seed uint64, specs ...DeviceSpec) (*Platform, error) {
	return synergy.NewPlatform(seed, specs...)
}

// MeasureAt measures a workload at one frequency, averaged over reps
// repetitions (the paper uses 5).
func MeasureAt(q *Queue, w Workload, freqMHz, reps int) (Measurement, error) {
	return synergy.MeasureAt(q, w, freqMHz, reps)
}

// Sweep measures a workload at every listed frequency.
func Sweep(q *Queue, w Workload, freqs []int, reps int) ([]Measurement, error) {
	return synergy.Sweep(q, w, freqs, reps)
}

// ParallelSweep is Sweep fanned out over the deterministic worker pool of
// internal/parallel: frequencies are measured concurrently on pre-split
// device clones and the results are byte-identical to Sweep for every worker
// count (0 = GOMAXPROCS, 1 = serial).
func ParallelSweep(q *Queue, w Workload, freqs []int, reps, workers int) ([]Measurement, error) {
	return synergy.ParallelSweep(q, w, freqs, reps, workers)
}

// Applications.
type (
	// CronosWorkload is a Cronos MHD simulation as a GPU workload.
	CronosWorkload = cronos.Workload
	// LiGenInput is a virtual-screening input (ligands, atoms, fragments).
	LiGenInput = ligen.Input
	// LiGenWorkload is a virtual-screening campaign as a GPU workload.
	LiGenWorkload = ligen.Workload
)

// NewCronosWorkload builds a Cronos workload for an nx×ny×nz grid advanced
// for the given number of timesteps.
func NewCronosWorkload(nx, ny, nz, steps int) (CronosWorkload, error) {
	return cronos.NewWorkload(nx, ny, nz, steps)
}

// NewLiGenWorkload builds a LiGen workload with campaign-scale parameters.
func NewLiGenWorkload(in LiGenInput) (LiGenWorkload, error) {
	return ligen.NewWorkload(in)
}

// Domain-specific modeling (the paper's contribution).
type (
	// Schema names an application's domain-specific features (Table 2).
	Schema = core.Schema
	// Dataset is a measured training set (Figure 11, step 3).
	Dataset = core.Dataset
	// FeaturedWorkload couples a workload with its feature vector.
	FeaturedWorkload = core.FeaturedWorkload
	// BuildConfig controls dataset acquisition.
	BuildConfig = core.BuildConfig
	// Model is a trained domain-specific model pair.
	Model = core.Model
	// CurvePoint is a (frequency, speedup, normalized energy) prediction.
	CurvePoint = core.CurvePoint
	// InputAccuracy is one input's leave-one-out MAPE pair.
	InputAccuracy = core.InputAccuracy
	// ModelSpec selects and parameterizes a regression algorithm.
	ModelSpec = ml.Spec
	// ParetoPoint is one frequency's outcome in the objective plane.
	ParetoPoint = pareto.Point
)

// CronosSchema returns the magnetohydrodynamics feature set of Table 2.
func CronosSchema() Schema { return core.CronosSchema() }

// LiGenSchema returns the drug-discovery feature set of Table 2.
func LiGenSchema() Schema { return core.LiGenSchema() }

// RandomForestSpec returns the paper's selected model configuration.
func RandomForestSpec() ModelSpec { return ml.Spec{Algorithm: "forest"} }

// BuildDataset runs the training-phase measurement workflow of Figure 11.
func BuildDataset(q *Queue, schema Schema, wls []FeaturedWorkload, cfg BuildConfig) (*Dataset, error) {
	return core.BuildDataset(q, schema, wls, cfg)
}

// Train fits raw time/energy models on the dataset.
func Train(ds *Dataset, spec ModelSpec, seed uint64) (*Model, error) {
	return core.Train(ds, spec, seed)
}

// TrainNormalized fits speedup/normalized-energy models on the dataset — the
// formulation the paper's accuracy evaluation uses.
func TrainNormalized(ds *Dataset, spec ModelSpec, seed uint64) (*Model, error) {
	return core.TrainNormalized(ds, spec, seed)
}

// LeaveOneInputOut runs the paper's validation protocol (§5.2).
func LeaveOneInputOut(ds *Dataset, spec ModelSpec, seed uint64) ([]InputAccuracy, error) {
	return core.LeaveOneInputOut(ds, spec, seed)
}

// ParetoFront extracts the Pareto-optimal subset of points (maximize
// speedup, minimize normalized energy).
func ParetoFront(points []ParetoPoint) []ParetoPoint { return pareto.Front(points) }

// Observability (deterministic metrics, simulated-time traces, wall-clock
// profiles — see internal/obs).
type (
	// Observer bundles the three observability signals; attach one with
	// Platform.SetObserver or ExperimentConfig.Obs. A nil Observer disables
	// all instrumentation, and attaching one never changes a result byte.
	Observer = obs.Observer
	// MetricRegistry collects counters, gauges and histograms whose
	// deterministic export is byte-identical across runs and worker counts.
	MetricRegistry = obs.Registry
	// TraceSpan is one simulated-time span of a trace export.
	TraceSpan = obs.Span
)

// NewObserver returns an observer with metrics, tracing and profiling
// enabled.
func NewObserver() *Observer { return obs.NewObserver() }

// Experiment harness.
type (
	// ExperimentConfig controls experiment fidelity.
	ExperimentConfig = experiments.Config
)

// DefaultExperimentConfig reproduces the paper's protocol.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// QuickExperimentConfig trades fidelity for runtime.
func QuickExperimentConfig() ExperimentConfig { return experiments.QuickConfig() }
