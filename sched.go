package dsenergy

import (
	"dsenergy/internal/gpusim"
	"dsenergy/internal/sched"
)

// Deadline-aware multi-tenant scheduling: the trained per-application models
// spent online. Jobs arrive with deadlines; the scheduler admits or rejects
// them against predicted completion, picks each job's device and core
// frequency from the model's time/energy curve, and survives device loss,
// thermal throttling and transient faults on the resilient cluster — closing
// with a per-tenant SLO report.

type (
	// SchedJob is one unit of tenant work: an application run with an
	// arrival time, a size and a completion deadline.
	SchedJob = sched.Job
	// SchedApp identifies a job's application (LiGen or Cronos).
	SchedApp = sched.App
	// JobStreamConfig controls the seeded multi-tenant job stream.
	JobStreamConfig = sched.StreamConfig
	// SchedPolicy selects the per-job frequency strategy (the tuner-facade
	// Policy is the offline counterpart; this one decides online, per job).
	SchedPolicy = sched.Policy
	// SchedModelSet bundles the trained per-application raw predictors.
	SchedModelSet = sched.ModelSet
	// SchedConfig parameterizes a scheduler run.
	SchedConfig = sched.Config
	// Scheduler executes job streams on a resilient cluster.
	Scheduler = sched.Scheduler
	// SLOReport is one run's SLO accounting: admissions, misses, lateness
	// percentiles, robustness event counts and the energy split.
	SLOReport = sched.Report
	// TenantSLO is one tenant's slice of the SLO accounting.
	TenantSLO = sched.TenantSLO
)

// Scheduler applications and frequency policies.
const (
	SchedAppLiGen  = sched.AppLiGen
	SchedAppCronos = sched.AppCronos

	SchedPolicyModel   = sched.PolicyModel
	SchedPolicyMaxFreq = sched.PolicyMaxFreq
	SchedPolicyStatic  = sched.PolicyStatic
)

// GenerateJobStream draws a deterministic mixed multi-tenant job stream whose
// deadlines are sized from noiseless execution times on the reference device.
func GenerateJobStream(cfg JobStreamConfig, ref DeviceSpec) ([]SchedJob, error) {
	return sched.GenerateStream(cfg, gpusim.Spec(ref))
}

// NewScheduler builds a deadline-aware scheduler over the cluster (attach any
// fault plan to the cluster first).
func NewScheduler(c *Cluster, cfg SchedConfig) (*Scheduler, error) {
	return sched.New(c, cfg)
}

// DefaultTenants returns the stream's default campaign owners.
func DefaultTenants() []string { return sched.DefaultTenants() }
