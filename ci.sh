#!/bin/sh
# ci.sh — the repository's full correctness gate. Every check must pass:
#
#   1. gofmt        all source formatted (testdata fixtures included)
#   2. go vet       stdlib static analysis
#   3. go build     everything compiles
#   4. go test -race  full test suite under the race detector
#   5. results      reproduce -quick regenerated and diffed against the
#                   checked-in results/quick snapshot (drift guard)
#   6. dsalint      the domain-aware suite (internal/analysis): syntactic
#                   passes plus the interprocedural determinism contracts
#                   (forkabsorb, wallclock, detloop, sharedwrite, floatacc);
#                   self-lint must report zero non-baselined findings
#
# Run from the repository root: ./ci.sh
# Artifacts (dsalint JSON report) land in ci-artifacts/.
set -eu

cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The resilience layer's retry/requeue concurrency, the deterministic
# parallel engine, the observability registry (counters bumped from worker
# goroutines, trace fork/absorb), the forest trainer's pooled workspaces
# (shared column copy read by every tree goroutine) and the deadline-aware
# scheduler (serial core, but its campaign fans out over forked observers),
# the MHD solver's slab fan-out (tiled sweeps writing disjoint slabs of
# shared SoA state), the frequency-advisor service (RCU hot-reload registry
# read concurrently by sharded event loops), the gpusim analytic cache (RCU
# snapshots compiled under a mutex, read lock-free by forked devices) and the
# synergy sweep engine that hammers it from parallel workers are where a
# scheduling race would hide: run their packages twice under the race
# detector so goroutine interleavings get a second roll of the dice.
echo "==> go test -race -count=2 ./internal/faults ./internal/cluster ./internal/parallel ./internal/obs ./internal/ml ./internal/sched ./internal/cronos ./internal/serve ./internal/gpusim ./internal/synergy"
go test -race -count=2 ./internal/faults ./internal/cluster ./internal/parallel ./internal/obs ./internal/ml ./internal/sched ./internal/cronos ./internal/serve ./internal/gpusim ./internal/synergy

# Tiled-solver determinism smoke: the pencil-tiled stencil must produce the
# frozen golden state hashes and be byte-invariant to the tile width and the
# worker count — the Cronos equivalent of the engine's Jobs-invariance
# contract.
echo "==> cronos tiled determinism smoke"
go test -race -run 'TestTileWidthInvariance|TestGolden|TestWorkerCountDoesNotChangeResult' -count=2 ./internal/cronos

# Analytic-cache transparency smoke: the compiled-profile cache is a pure
# evaluation shortcut, so sweeping with it attached and detached must agree
# on every observable byte (measurements, event logs, energy counters),
# serially and under ParallelSweep; the golden suite pins the compiled
# evaluator bit-for-bit against the pre-rewrite engine's recorded outputs.
echo "==> gpusim cache-on vs cache-off byte-identity smoke"
go test -race -run 'TestSweepCacheOnOffByteIdentical' -count=2 ./internal/synergy
go test -run 'TestGoldenAnalytic' -count=1 ./internal/gpusim

# The analysis engine itself must be deterministic and race-free: its tests
# build call graphs and run every pass concurrently-adjacent code, so run the
# package twice under the race detector like the other concurrency-bearing
# packages.
echo "==> go test -race -count=2 ./internal/analysis"
go test -race -count=2 ./internal/analysis

# Parallel-vs-serial equivalence smoke: regenerate a figure and the cluster
# resilience study with Jobs=1 and Jobs=0 under the race detector and require
# byte-identical results (the engine's core contract, end to end).
echo "==> parallel equivalence smoke (Jobs=0 vs Jobs=1)"
go test -race -run 'TestJobsInvariance' ./internal/experiments

# Observability smoke: enabling -metrics/-trace must not change one result
# byte, and the exports themselves must be identical for every -j value.
echo "==> observability smoke (reproduce -quick with vs without -metrics/-trace)"
obsdir=$(mktemp -d)
trap 'rm -rf "$obsdir"' EXIT
go build -o "$obsdir/reproduce" ./cmd/reproduce
"$obsdir/reproduce" -quick -out "$obsdir/plain" >/dev/null
"$obsdir/reproduce" -quick -out "$obsdir/observed" -j 1 \
    -metrics "$obsdir/m1.json" -trace "$obsdir/t1.txt" >/dev/null
"$obsdir/reproduce" -quick -out "$obsdir/observed2" -j 0 \
    -metrics "$obsdir/m2.json" -trace "$obsdir/t2.txt" >/dev/null
diff -r "$obsdir/plain" "$obsdir/observed"
diff -r "$obsdir/plain" "$obsdir/observed2"
diff "$obsdir/m1.json" "$obsdir/m2.json"
diff "$obsdir/t1.txt" "$obsdir/t2.txt"

# Results drift guard: the checked-in results/quick snapshot must match what
# cmd/reproduce produces at HEAD, so stale committed numbers cannot survive a
# code change that moves them.
echo "==> results drift guard (reproduce -quick vs results/quick)"
"$obsdir/reproduce" -quick -out "$obsdir/drift" >/dev/null
diff -r results/quick "$obsdir/drift"

# Scheduler -j invariance smoke: the scheduling campaign must emit
# byte-identical reports whether its six cells run serially or fan out.
echo "==> schedule -j invariance smoke (-j 1 vs -j 0)"
go build -o "$obsdir/schedule" ./cmd/schedule
"$obsdir/schedule" -quick -j 1 > "$obsdir/sched1.txt"
"$obsdir/schedule" -quick -j 0 > "$obsdir/schedN.txt"
diff "$obsdir/sched1.txt" "$obsdir/schedN.txt"

# Serving -j invariance smoke: the four advisor shards must emit
# byte-identical SLO reports whether they run serially or fan out, even with
# a hot-reload and a rejected corrupt upload mid-load.
echo "==> serve -j invariance smoke (-j 1 vs -j 0)"
go build -o "$obsdir/serve" ./cmd/serve
"$obsdir/serve" -quick -requests 20000 -j 1 > "$obsdir/serve1.txt"
"$obsdir/serve" -quick -requests 20000 -j 0 > "$obsdir/serveN.txt"
diff "$obsdir/serve1.txt" "$obsdir/serveN.txt"

# Self-lint: the full domain-aware suite over the whole module. The JSON
# report is archived for inspection; the text run is the hard gate and must
# report zero findings that are not baselined in source (//dsalint:ignore).
echo "==> dsalint ./... (self-lint, JSON report archived)"
mkdir -p ci-artifacts
go run ./cmd/dsalint -json ./... > ci-artifacts/dsalint.json || {
    echo "dsalint: non-baselined findings (see ci-artifacts/dsalint.json)" >&2
    exit 1
}

echo "CI gate passed."
