#!/bin/sh
# ci.sh — the repository's full correctness gate. Every check must pass:
#
#   1. gofmt        all source formatted (testdata fixtures included)
#   2. go vet       stdlib static analysis
#   3. go build     everything compiles
#   4. go test -race  full test suite under the race detector
#   5. dsalint      the domain-aware suite (internal/analysis): unit
#                   consistency, float equality, seeded randomness, map-order
#                   determinism, goroutine joins, dead assignments
#
# Run from the repository root: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The resilience layer's retry/requeue concurrency is where a scheduling race
# would hide: run its packages twice under the race detector so goroutine
# interleavings get a second roll of the dice.
echo "==> go test -race -count=2 ./internal/faults ./internal/cluster"
go test -race -count=2 ./internal/faults ./internal/cluster

echo "==> dsalint ./..."
go run ./cmd/dsalint ./...

echo "CI gate passed."
