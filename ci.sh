#!/bin/sh
# ci.sh — the repository's full correctness gate. Every check must pass:
#
#   1. gofmt        all source formatted (testdata fixtures included)
#   2. go vet       stdlib static analysis
#   3. go build     everything compiles
#   4. go test -race  full test suite under the race detector
#   5. dsalint      the domain-aware suite (internal/analysis): unit
#                   consistency, float equality, seeded randomness, map-order
#                   determinism, goroutine joins, dead assignments
#
# Run from the repository root: ./ci.sh
set -eu

cd "$(dirname "$0")"

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# The resilience layer's retry/requeue concurrency and the deterministic
# parallel engine are where a scheduling race would hide: run their packages
# twice under the race detector so goroutine interleavings get a second roll
# of the dice.
echo "==> go test -race -count=2 ./internal/faults ./internal/cluster ./internal/parallel"
go test -race -count=2 ./internal/faults ./internal/cluster ./internal/parallel

# Parallel-vs-serial equivalence smoke: regenerate a figure and the cluster
# resilience study with Jobs=1 and Jobs=0 under the race detector and require
# byte-identical results (the engine's core contract, end to end).
echo "==> parallel equivalence smoke (Jobs=0 vs Jobs=1)"
go test -race -run 'TestJobsInvariance' ./internal/experiments

echo "==> dsalint ./..."
go run ./cmd/dsalint ./...

echo "CI gate passed."
