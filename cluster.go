package dsenergy

import (
	"dsenergy/internal/cluster"
	"dsenergy/internal/gpusim"
)

// Multi-GPU distributed execution (the Celerity-runtime role of the paper's
// context: Cronos' cluster port and LiGen's multi-node campaigns).

type (
	// Cluster is a set of identical simulated devices with an interconnect.
	Cluster = cluster.Cluster
	// Interconnect describes the fabric between devices.
	Interconnect = cluster.Interconnect
	// ClusterResult is a distributed run's outcome.
	ClusterResult = cluster.Result
)

// DefaultInterconnect returns an InfiniBand-class fabric.
func DefaultInterconnect() Interconnect { return cluster.DefaultInterconnect() }

// NewCluster builds an n-device homogeneous cluster.
func NewCluster(seed uint64, spec DeviceSpec, n int, net Interconnect) (*Cluster, error) {
	return cluster.New(seed, gpusim.Spec(spec), n, net)
}
