package dsenergy

import (
	"dsenergy/internal/cluster"
	"dsenergy/internal/faults"
	"dsenergy/internal/gpusim"
)

// Multi-GPU distributed execution (the Celerity-runtime role of the paper's
// context: Cronos' cluster port and LiGen's multi-node campaigns).

type (
	// Cluster is a set of identical simulated devices with an interconnect.
	Cluster = cluster.Cluster
	// Interconnect describes the fabric between devices.
	Interconnect = cluster.Interconnect
	// ClusterResult is a distributed run's outcome.
	ClusterResult = cluster.Result
)

// Seeded fault injection and resilient execution. A FaultPlan describes the
// faults a campaign will encounter — deterministically, from its seed — and
// ResilienceConfig describes how the cluster survives them (retry budgets,
// checkpoint interval, shard granularity). Attach both with
// Cluster.SetFaultPlan before running; an empty plan leaves execution
// bit-identical to a fault-free run.
type (
	// FaultPlan is a seeded, deterministic schedule of injected faults.
	FaultPlan = faults.Plan
	// DeviceFailure permanently kills one device after a submission count.
	DeviceFailure = faults.DeviceFailure
	// ThermalThrottle caps one device's effective clock over a submission window.
	ThermalThrottle = faults.Throttle
	// ClockReject makes one device refuse a specific SetCoreFreq call.
	ClockReject = faults.ClockReject
	// ResilienceConfig tunes retries, backoff, checkpointing and sharding.
	ResilienceConfig = cluster.ResilienceConfig
)

// DefaultResilienceConfig returns the documented resilience defaults.
func DefaultResilienceConfig() ResilienceConfig { return cluster.DefaultResilienceConfig() }

// IsTransientFault reports whether err is a retryable injected fault.
func IsTransientFault(err error) bool { return faults.IsTransient(err) }

// IsPermanentFault reports whether err is a permanent device loss.
func IsPermanentFault(err error) bool { return faults.IsPermanent(err) }

// DefaultInterconnect returns an InfiniBand-class fabric.
func DefaultInterconnect() Interconnect { return cluster.DefaultInterconnect() }

// NewCluster builds an n-device homogeneous cluster.
func NewCluster(seed uint64, spec DeviceSpec, n int, net Interconnect) (*Cluster, error) {
	return cluster.New(seed, gpusim.Spec(spec), n, net)
}
